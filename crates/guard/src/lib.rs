//! `osdiv-guard` — the workspace's static-analysis gate.
//!
//! The server parses attacker-controlled bytes on four surfaces (HTTP
//! request heads, chunked transfer framing, NVD XML feeds, and the
//! OSDV/OSDJ snapshot/journal decoders). This crate lexes those modules
//! with a small hand-rolled Rust tokenizer and enforces invariants the
//! compiler can't:
//!
//! - **panic-freedom** (`panic`, `index`, `arith` rules) in the declared
//!   attacker-facing modules,
//! - **bounded HTTP-reachable parameters** (`clamp` rule) where query
//!   parameters are parsed,
//! - **lock discipline** (`lock` rule) where registry write-guards live.
//!
//! Exceptions use an inline waiver — `// guard: allow(<rule>) — <reason>`
//! — which is counted, audited, and invalid without a reason. See
//! `docs/STATIC_ANALYSIS.md` for the full rule catalogue.

pub mod rules;
pub mod tokenizer;

use std::path::Path;

pub use rules::{check_source, Report, Rule, Violation, WaiverRecord};

/// Attacker-facing modules: the `panic`, `index` and `arith` rules apply.
/// Adding a parsing surface to the server means adding it here (and a
/// meta-test fails if a listed file disappears in a rename).
pub const ATTACKER_SURFACES: &[&str] = &[
    "crates/serve/src/http.rs",
    "crates/nvd-feed/src/xml.rs",
    "crates/nvd-feed/src/reader.rs",
    "crates/core/src/snapshot.rs",
    "crates/core/src/obs.rs",
    "crates/serve/src/debug.rs",
    "crates/vulnstore/src/snapshot.rs",
    "crates/registry/src/persist.rs",
    "crates/registry/src/ingest.rs",
    "crates/core/src/fault.rs",
];

/// Files that turn HTTP query parameters into numbers: the `clamp` rule
/// applies (Params-derived values feeding loops/allocations must be
/// capped in-function).
pub const PARAM_SURFACES: &[&str] = &["crates/core/src/params.rs", "crates/serve/src/router.rs"];

/// Files holding shared-state write locks near parsing/IO: the `lock`
/// rule applies (no write guard live across attacker-paced work).
pub const LOCK_SURFACES: &[&str] = &[
    "crates/registry/src/registry.rs",
    "crates/serve/src/router.rs",
    "crates/vulnstore/src/concurrent.rs",
];

/// Every `(path, rules)` assignment the tree check runs.
pub fn surface_plan() -> Vec<(&'static str, Vec<Rule>)> {
    let mut plan: Vec<(&'static str, Vec<Rule>)> = Vec::new();
    for path in ATTACKER_SURFACES {
        plan.push((path, vec![Rule::Panic, Rule::Index, Rule::Arith]));
    }
    for path in PARAM_SURFACES {
        plan.push((path, vec![Rule::Clamp]));
    }
    for path in LOCK_SURFACES {
        plan.push((path, vec![Rule::Lock]));
    }
    // Merge duplicate paths (router.rs is both a param and a lock surface)
    // so each file is read and lexed once.
    plan.sort_by_key(|(path, _)| *path);
    plan.dedup_by(|(path_b, rules_b), (path_a, rules_a)| {
        if path_a == path_b {
            rules_a.extend(rules_b.iter().copied());
            true
        } else {
            false
        }
    });
    plan
}

/// Checks the whole workspace rooted at `root`. A listed surface that no
/// longer exists is itself a violation (`config` rule) so a rename can't
/// silently un-lint a parsing surface.
pub fn check_tree(root: &Path) -> Report {
    let mut report = Report::default();
    for (path, rules) in surface_plan() {
        let full = root.join(path);
        match std::fs::read_to_string(&full) {
            Ok(source) => report.merge(check_source(path, &source, &rules)),
            Err(error) => report.violations.push(Violation {
                file: path.to_string(),
                line: 0,
                rule: "config",
                message: format!(
                    "declared surface is unreadable ({error}) — update the surface lists in \
                     crates/guard/src/lib.rs if the file moved"
                ),
            }),
        }
    }
    report
}

/// Renders a report as human-readable text (one line per finding).
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    for v in &report.violations {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n",
            v.file, v.line, v.rule, v.message
        ));
    }
    out.push_str(&format!(
        "osdiv-guard: {} file(s) checked, {} violation(s), {} waiver(s)\n",
        report.files_checked,
        report.violations.len(),
        report.waivers.len()
    ));
    for w in &report.waivers {
        out.push_str(&format!(
            "  waived {}:{} [{}] — {}\n",
            w.file, w.line, w.rule, w.reason
        ));
    }
    out
}

/// Renders a report as JSON (hand-rolled: the guard is dependency-free).
pub fn render_json(report: &Report) -> String {
    fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let violations: Vec<String> = report
        .violations
        .iter()
        .map(|v| {
            format!(
                "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
                escape(&v.file),
                v.line,
                escape(v.rule),
                escape(&v.message)
            )
        })
        .collect();
    let waivers: Vec<String> = report
        .waivers
        .iter()
        .map(|w| {
            format!(
                "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"reason\":\"{}\"}}",
                escape(&w.file),
                w.line,
                escape(&w.rule),
                escape(&w.reason)
            )
        })
        .collect();
    format!(
        "{{\"files_checked\":{},\"violations\":[{}],\"waivers\":[{}]}}\n",
        report.files_checked,
        violations.join(","),
        waivers.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surface_plan_merges_duplicate_paths() {
        let plan = surface_plan();
        let mut paths: Vec<&str> = plan.iter().map(|(p, _)| *p).collect();
        paths.sort_unstable();
        let before = paths.len();
        paths.dedup();
        assert_eq!(before, paths.len(), "each file appears once in the plan");
        let router = plan
            .iter()
            .find(|(p, _)| *p == "crates/serve/src/router.rs")
            .expect("router is a surface");
        assert!(router.1.contains(&Rule::Clamp) && router.1.contains(&Rule::Lock));
    }

    #[test]
    fn json_escapes_quotes_and_newlines() {
        let mut report = Report::default();
        report.violations.push(Violation {
            file: "a\"b.rs".to_string(),
            line: 3,
            rule: "panic",
            message: "line1\nline2".to_string(),
        });
        let json = render_json(&report);
        assert!(json.contains("a\\\"b.rs"));
        assert!(json.contains("line1\\nline2"));
    }
}
