//! A small hand-rolled Rust lexer — just enough fidelity for the guard's
//! token-level rules: comments (line + nested block), strings with escapes,
//! raw strings (`r#"…"#`, any `#` count), byte strings/chars, and the
//! lifetime-vs-char-literal ambiguity (`'a` vs `'a'`).
//!
//! The lexer also harvests guard *waivers* from line comments
//! (`// guard: allow(<rule>) — <reason>`), recording whether the comment
//! trails code (waives its own line) or stands alone (waives the next line
//! of code).

/// What a token is, at the granularity the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`buffer`, `let`, `fn`, `self`, …).
    Ident,
    /// A lifetime (`'a`) — lexed so `'a'` char literals never confuse it.
    Lifetime,
    /// String / raw-string / byte-string / char / byte literal.
    Literal,
    /// Numeric literal.
    Number,
    /// Punctuation; multi-char operators the rules must distinguish
    /// (`->`, `-=`, `..=`, `::`, …) are emitted as one token.
    Punct,
}

/// One lexed token, tagged with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
}

/// A waiver comment: `// guard: allow(<rule>) — <reason>`.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// The rule name inside `allow(…)`.
    pub rule: String,
    /// The reason text after the separator; empty means "missing".
    pub reason: String,
    /// Line of the comment itself.
    pub comment_line: u32,
    /// The line of code the waiver applies to (same line for trailing
    /// comments, the next code line for standalone ones — resolved by
    /// [`lex`] once the whole file is tokenized).
    pub applies_to: u32,
}

/// A fully lexed file: tokens plus resolved waivers.
#[derive(Debug)]
pub struct FileLex {
    pub tokens: Vec<Token>,
    pub waivers: Vec<Waiver>,
}

/// Multi-char operators emitted as single tokens (longest match first).
const OPERATORS: &[&str] = &[
    "..=", "::", "->", "=>", "==", "!=", "<=", ">=", "-=", "+=", "*=", "/=", "%=", "&&", "||",
    "<<", ">>", "..",
];

/// The marker a waiver comment must start with (after `//`).
const WAIVER_PREFIX: &str = "guard: allow(";

/// Lexes a Rust source file. Never fails: unterminated constructs simply
/// consume the rest of the input (the compiler is the arbiter of validity —
/// the guard only needs to not misclassify what *does* compile).
pub fn lex(source: &str) -> FileLex {
    let bytes = source.as_bytes();
    let mut tokens: Vec<Token> = Vec::new();
    let mut pending: Vec<Waiver> = Vec::new();
    let mut waivers: Vec<Waiver> = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // Whether any token has been emitted on the current line (decides
    // trailing vs standalone for waiver comments).
    let mut line_has_code = false;

    macro_rules! bump_line {
        () => {{
            line += 1;
            line_has_code = false;
        }};
    }

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                i += 1;
                bump_line!();
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                // Line comment: scan to end of line, harvesting waivers.
                let start = i + 2;
                let mut end = start;
                while end < bytes.len() && bytes[end] != b'\n' {
                    end += 1;
                }
                let text = source.get(start..end).unwrap_or("");
                if let Some(mut waiver) = parse_waiver(text, line) {
                    if line_has_code {
                        waiver.applies_to = line;
                        waivers.push(waiver);
                    } else {
                        pending.push(waiver); // resolved at next code token
                    }
                }
                i = end;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment, nested.
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        bump_line!();
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if is_raw_or_byte_string(bytes, i) => {
                let (token, next, newlines) = lex_string_like(source, bytes, i, line);
                emit(
                    &mut tokens,
                    &mut pending,
                    &mut waivers,
                    token,
                    &mut line_has_code,
                );
                for _ in 0..newlines {
                    line += 1;
                }
                if newlines > 0 {
                    line_has_code = false;
                }
                i = next;
            }
            b'"' => {
                let (token, next, newlines) = lex_string_like(source, bytes, i, line);
                emit(
                    &mut tokens,
                    &mut pending,
                    &mut waivers,
                    token,
                    &mut line_has_code,
                );
                for _ in 0..newlines {
                    line += 1;
                }
                if newlines > 0 {
                    line_has_code = false;
                }
                i = next;
            }
            b'\'' => {
                let (token, next) = lex_quote(source, bytes, i, line);
                emit(
                    &mut tokens,
                    &mut pending,
                    &mut waivers,
                    token,
                    &mut line_has_code,
                );
                i = next;
            }
            _ if b.is_ascii_digit() => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'.')
                {
                    // Stop a number's `.` from eating `..` ranges or method
                    // calls on literals (`1.min(x)`).
                    if bytes[i] == b'.' && !bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
                        break;
                    }
                    i += 1;
                }
                let token = Token {
                    kind: TokenKind::Number,
                    text: source[start..i].to_string(),
                    line,
                };
                emit(
                    &mut tokens,
                    &mut pending,
                    &mut waivers,
                    token,
                    &mut line_has_code,
                );
            }
            _ if b.is_ascii_alphabetic() || b == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let token = Token {
                    kind: TokenKind::Ident,
                    text: source[start..i].to_string(),
                    line,
                };
                emit(
                    &mut tokens,
                    &mut pending,
                    &mut waivers,
                    token,
                    &mut line_has_code,
                );
            }
            _ => {
                let rest = &source[i..];
                let op = OPERATORS.iter().find(|op| rest.starts_with(**op));
                let text = match op {
                    Some(op) => (*op).to_string(),
                    None => {
                        // One byte of punctuation (multi-byte UTF-8 chars
                        // only occur inside strings/comments in valid Rust;
                        // pass stray bytes through one at a time).
                        let ch_len = utf8_len(b);
                        source.get(i..i + ch_len).unwrap_or("?").to_string()
                    }
                };
                let advance = text.len();
                let token = Token {
                    kind: TokenKind::Punct,
                    text,
                    line,
                };
                emit(
                    &mut tokens,
                    &mut pending,
                    &mut waivers,
                    token,
                    &mut line_has_code,
                );
                i += advance;
            }
        }
    }

    // Standalone waivers with no code after them waive nothing; keep them
    // recorded (applies_to stays on the comment line) so reasons are still
    // audited.
    waivers.append(&mut pending);
    waivers.sort_by_key(|w| (w.applies_to, w.comment_line));
    FileLex { tokens, waivers }
}

/// Emits a token, resolving any pending standalone waivers to its line.
fn emit(
    tokens: &mut Vec<Token>,
    pending: &mut Vec<Waiver>,
    waivers: &mut Vec<Waiver>,
    token: Token,
    line_has_code: &mut bool,
) {
    if !pending.is_empty() {
        for mut waiver in pending.drain(..) {
            waiver.applies_to = token.line;
            waivers.push(waiver);
        }
    }
    *line_has_code = true;
    tokens.push(token);
}

/// Parses `guard: allow(<rule>) <sep> <reason>` out of a line comment body.
fn parse_waiver(comment: &str, line: u32) -> Option<Waiver> {
    let comment = comment.trim_start();
    let rest = comment.strip_prefix(WAIVER_PREFIX)?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    let reason = rest[close + 1..]
        .trim_start()
        .trim_start_matches(['—', '–', '-', ':', ' '])
        .trim()
        .to_string();
    Some(Waiver {
        rule,
        reason,
        comment_line: line,
        applies_to: line,
    })
}

/// Is `r`/`b` at `i` the start of a raw/byte string or byte char —
/// as opposed to a plain identifier like `rows` or `bytes`?
fn is_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    // Accept the prefixes r" r#" br" b" b' rb" (rb isn't real Rust but
    // costs nothing).
    while j < bytes.len() && (bytes[j] == b'r' || bytes[j] == b'b') && j - i < 2 {
        j += 1;
    }
    let mut k = j;
    while k < bytes.len() && bytes[k] == b'#' {
        k += 1;
    }
    match bytes.get(k) {
        Some(b'"') => true,
        // b'x' byte literal (only valid straight after `b`).
        Some(b'\'') => k == j && j == i + 1 && bytes[i] == b'b',
        _ => false,
    }
}

/// Lexes a string-ish literal starting at `i`: plain, raw (any `#` count),
/// byte, or byte-char. Returns the token, the index after it, and how many
/// newlines it spanned.
fn lex_string_like(source: &str, bytes: &[u8], i: usize, line: u32) -> (Token, usize, u32) {
    let start = i;
    let mut j = i;
    while j < bytes.len() && (bytes[j] == b'r' || bytes[j] == b'b') {
        j += 1;
    }
    let raw = source[start..j].contains('r');
    let mut hashes = 0usize;
    while j < bytes.len() && bytes[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    let mut newlines = 0u32;
    if bytes.get(j) == Some(&b'\'') {
        // b'x' byte literal.
        let (token, next) = lex_quote(source, bytes, j, line);
        let _ = token;
        let text = source.get(start..next).unwrap_or("").to_string();
        return (
            Token {
                kind: TokenKind::Literal,
                text,
                line,
            },
            next,
            0,
        );
    }
    debug_assert_eq!(bytes.get(j), Some(&b'"'));
    j += 1; // opening quote
    while j < bytes.len() {
        match bytes[j] {
            b'\n' => {
                newlines += 1;
                j += 1;
            }
            b'\\' if !raw => j += 2,
            b'"' => {
                // A raw string only closes on `"` followed by its hashes.
                let closes = if raw {
                    bytes[j + 1..]
                        .iter()
                        .take(hashes)
                        .filter(|b| **b == b'#')
                        .count()
                        == hashes
                } else {
                    true
                };
                if closes {
                    j += 1 + if raw { hashes } else { 0 };
                    break;
                }
                j += 1;
            }
            _ => j += 1,
        }
    }
    let text = source
        .get(start..j.min(bytes.len()))
        .unwrap_or("")
        .to_string();
    (
        Token {
            kind: TokenKind::Literal,
            text,
            line,
        },
        j.min(bytes.len()),
        newlines,
    )
}

/// Lexes from a `'`: either a char literal (`'a'`, `'\n'`, `'\''`) or a
/// lifetime (`'a`, `'static`).
fn lex_quote(source: &str, bytes: &[u8], i: usize, line: u32) -> (Token, usize) {
    // Escape ⇒ char literal.
    if bytes.get(i + 1) == Some(&b'\\') {
        let mut j = i + 2;
        if j < bytes.len() {
            j += utf8_len(bytes[j]); // the escaped char
        }
        // Consume to the closing quote (covers \u{…} and friends).
        while j < bytes.len() && bytes[j] != b'\'' && bytes[j] != b'\n' {
            j += 1;
        }
        let end = (j + 1).min(bytes.len());
        return (
            Token {
                kind: TokenKind::Literal,
                text: source.get(i..end).unwrap_or("'").to_string(),
                line,
            },
            end,
        );
    }
    // `'X'` (one char then a quote) ⇒ char literal.
    if let Some(&c) = bytes.get(i + 1) {
        let char_len = utf8_len(c);
        if bytes.get(i + 1 + char_len) == Some(&b'\'') {
            let end = i + 2 + char_len;
            return (
                Token {
                    kind: TokenKind::Literal,
                    text: source.get(i..end).unwrap_or("'").to_string(),
                    line,
                },
                end,
            );
        }
    }
    // Otherwise a lifetime: consume the identifier after the quote.
    let mut j = i + 1;
    while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
        j += 1;
    }
    (
        Token {
            kind: TokenKind::Lifetime,
            text: source.get(i..j).unwrap_or("'").to_string(),
            line,
        },
        j,
    )
}

/// Length in bytes of the UTF-8 sequence starting with `first`.
fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b & 0xE0 == 0xC0 => 2,
        b if b & 0xF0 == 0xE0 => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn comments_strings_and_lifetimes_do_not_leak_tokens() {
        let src = r##"
// line comment with buffer[0] and .unwrap()
/* block /* nested */ still comment buffer[1] */
let s = "escaped \" quote [2]";
let r = r#"raw "quoted" [3]"#;
let b = b"bytes[4]";
let c = '\'';
let l: &'static str = "x";
fn f<'a>(x: &'a [u8]) {}
"##;
        let toks = texts(src);
        assert!(!toks.iter().any(|t| t.contains("unwrap")));
        assert!(toks.contains(&"'static".to_string()));
        assert!(toks.contains(&"'a".to_string()));
        // The bracket tokens that survive are code brackets only.
        let brackets = toks.iter().filter(|t| *t == "[").count();
        assert_eq!(brackets, 1, "only the `&'a [u8]` slice type bracket");
    }

    #[test]
    fn multi_char_operators_are_single_tokens() {
        let toks = texts("a -= b; c -> d; e ..= f; g .. h; i - j");
        assert!(toks.contains(&"-=".to_string()));
        assert!(toks.contains(&"->".to_string()));
        assert!(toks.contains(&"..=".to_string()));
        assert!(toks.contains(&"..".to_string()));
        assert!(toks.contains(&"-".to_string()));
    }

    #[test]
    fn waivers_attach_to_their_code_line() {
        let src = "\
let a = x[0]; // guard: allow(index) — pinned fixture
// guard: allow(panic) — next line
let b = y.unwrap();
";
        let lex = lex(src);
        let index = lex.waivers.iter().find(|w| w.rule == "index").unwrap();
        assert_eq!(index.applies_to, 1);
        assert_eq!(index.reason, "pinned fixture");
        let panic = lex.waivers.iter().find(|w| w.rule == "panic").unwrap();
        assert_eq!(panic.comment_line, 2);
        assert_eq!(panic.applies_to, 3);
    }

    #[test]
    fn waiver_reason_accepts_plain_dash_and_flags_empty() {
        let w = parse_waiver("guard: allow(arith) - wraps by design", 1).unwrap();
        assert_eq!(w.reason, "wraps by design");
        let w = parse_waiver("guard: allow(arith)", 1).unwrap();
        assert!(w.reason.is_empty());
    }
}
