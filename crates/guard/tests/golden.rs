//! Golden-fixture tests: each rule is pinned by a bad/clean fixture pair
//! under `tests/fixtures/`. The bad fixture must trip the rule (this is
//! the proof that the guard *can* fail — a gate that cannot fail gates
//! nothing), the clean fixture must not.

use osdiv_guard::rules::{check_source, Report, Rule};
use std::path::PathBuf;

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|error| panic!("fixture {} unreadable: {error}", path.display()))
}

fn check(name: &str, rules: &[Rule]) -> Report {
    check_source(name, &fixture(name), rules)
}

fn rule_count(report: &Report, rule: &str) -> usize {
    report.violations.iter().filter(|v| v.rule == rule).count()
}

#[test]
fn panic_rule_trips_on_bad_and_passes_clean() {
    let bad = check("bad/panic.rs", &[Rule::Panic]);
    assert_eq!(
        rule_count(&bad, "panic"),
        6,
        "bad/panic.rs seeds unwrap, expect, panic!, todo!, unimplemented!, unreachable!: {:?}",
        bad.violations
    );
    let clean = check("clean/panic.rs", &[Rule::Panic]);
    assert_eq!(clean.violations, vec![], "clean/panic.rs must pass");
    assert_eq!(
        clean.waivers.len(),
        1,
        "the startup unwrap is waived with a reason"
    );
}

#[test]
fn cfg_test_items_are_exempt() {
    // clean/panic.rs ends with a #[cfg(test)] module full of unwraps and
    // asserts; the panic rule must not look inside it.
    let clean = check("clean/panic.rs", &[Rule::Panic]);
    assert!(
        !clean.violations.iter().any(|v| v.line > 26),
        "no finding may point into the cfg(test) module: {:?}",
        clean.violations
    );
}

#[test]
fn index_rule_trips_on_bad_and_passes_clean() {
    let bad = check("bad/index.rs", &[Rule::Index]);
    assert_eq!(
        rule_count(&bad, "index"),
        4,
        "bad/index.rs seeds 4 bare index expressions: {:?}",
        bad.violations
    );
    let clean = check("clean/index.rs", &[Rule::Index]);
    assert_eq!(
        clean.violations,
        vec![],
        "slice patterns, array literals and types are not indexing"
    );
}

#[test]
fn arith_rule_trips_on_bad_and_passes_clean() {
    let bad = check("bad/arith.rs", &[Rule::Arith]);
    assert_eq!(
        rule_count(&bad, "arith"),
        3,
        "bad/arith.rs seeds len-sub, count-mul and remaining-sub-assign: {:?}",
        bad.violations
    );
    let clean = check("clean/arith.rs", &[Rule::Arith]);
    assert_eq!(
        clean.violations,
        vec![],
        "saturating/checked forms and non-length operands must pass"
    );
}

#[test]
fn clamp_rule_trips_on_bad_and_passes_clean() {
    let bad = check("bad/clamp.rs", &[Rule::Clamp]);
    assert_eq!(
        rule_count(&bad, "clamp"),
        1,
        "bad/clamp.rs seeds one unclamped params binding: {:?}",
        bad.violations
    );
    let clean = check("clean/clamp.rs", &[Rule::Clamp]);
    assert_eq!(
        clean.violations,
        vec![],
        "binding-statement and later-line clamps both count"
    );
}

#[test]
fn lock_rule_trips_on_bad_and_passes_clean() {
    let bad = check("bad/lock.rs", &[Rule::Lock]);
    assert_eq!(
        rule_count(&bad, "lock"),
        1,
        "bad/lock.rs holds a write guard across parse_feed: {:?}",
        bad.violations
    );
    let clean = check("clean/lock.rs", &[Rule::Lock]);
    assert_eq!(
        clean.violations,
        vec![],
        "block-scoped and drop()-released guards must pass"
    );
}

#[test]
fn malformed_waivers_are_findings_and_do_not_suppress() {
    let bad = check("bad/waiver.rs", &[Rule::Index]);
    assert_eq!(
        rule_count(&bad, "waiver"),
        2,
        "reason-less and unknown-rule waivers are findings: {:?}",
        bad.violations
    );
    assert_eq!(
        rule_count(&bad, "index"),
        2,
        "a malformed waiver must not suppress the violation under it"
    );
    assert_eq!(bad.waivers.len(), 0, "nothing was legitimately waived");
}

#[test]
fn wellformed_waivers_suppress_and_are_recorded() {
    let clean = check("clean/waiver.rs", &[Rule::Index]);
    assert_eq!(
        clean.violations,
        vec![],
        "standalone and trailing waivers both suppress: {:?}",
        clean.violations
    );
    assert_eq!(clean.waivers.len(), 2);
    assert!(
        clean.waivers.iter().all(|w| !w.reason.is_empty()),
        "every recorded waiver carries its reason"
    );
}
