//! Binary-level tests: the `osdiv-guard` executable as CI runs it.
//! Pins the exit-code contract (0 clean / 1 violations / 2 usage), the
//! real tree staying clean with reasoned waivers, and the JSON format.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

fn guard(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_osdiv-guard"))
        .args(args)
        .output()
        .expect("guard binary runs")
}

#[test]
fn real_tree_is_clean_and_every_waiver_has_a_reason() {
    let root = workspace_root();
    let output = guard(&["check", "--root", root.to_str().expect("utf-8 path")]);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "the committed tree must pass its own guard:\n{stdout}"
    );
    assert!(stdout.contains("0 violation(s)"), "{stdout}");
    // Every waiver line printed by the text renderer ends `— <reason>`;
    // an empty reason would have been a violation already, but pin the
    // report too.
    for line in stdout
        .lines()
        .filter(|l| l.trim_start().starts_with("waived"))
    {
        let reason = line.rsplit('—').next().unwrap_or("").trim();
        assert!(!reason.is_empty(), "waiver without reason: {line}");
    }
}

#[test]
fn seeded_violation_fails_the_gate() {
    // Build a throwaway tree containing one declared surface with a
    // seeded panic site; the guard must exit non-zero (the missing
    // sibling surfaces are config findings — also violations).
    let dir = std::env::temp_dir().join(format!("osdiv-guard-seeded-{}", std::process::id()));
    let http = dir.join("crates/serve/src");
    std::fs::create_dir_all(&http).expect("temp tree");
    std::fs::write(
        http.join("http.rs"),
        "pub fn head(b: &[u8]) -> u8 { b.first().copied().unwrap() }\n",
    )
    .expect("seed file");
    let output = guard(&["check", "--root", dir.to_str().expect("utf-8 path")]);
    let stdout = String::from_utf8_lossy(&output.stdout);
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(
        output.status.code(),
        Some(1),
        "seeded unwrap must fail the gate:\n{stdout}"
    );
    assert!(stdout.contains("[panic]"), "{stdout}");
}

#[test]
fn moved_surface_file_is_a_config_violation() {
    let dir = std::env::temp_dir().join(format!("osdiv-guard-empty-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp tree");
    let output = guard(&["check", "--root", dir.to_str().expect("utf-8 path")]);
    let stdout = String::from_utf8_lossy(&output.stdout);
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(output.status.code(), Some(1));
    assert!(
        stdout.contains("[config]"),
        "a surface list pointing at a missing file must fail loudly, \
         not silently un-lint the surface:\n{stdout}"
    );
}

#[test]
fn json_format_is_machine_readable() {
    let root = workspace_root();
    let output = guard(&[
        "check",
        "--root",
        root.to_str().expect("utf-8 path"),
        "--format",
        "json",
    ]);
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.starts_with("{\"files_checked\":"), "{stdout}");
    assert!(stdout.contains("\"violations\":[]"), "{stdout}");
    assert!(stdout.contains("\"waivers\":["), "{stdout}");
}

#[test]
fn usage_errors_exit_2() {
    assert_eq!(guard(&[]).status.code(), Some(2));
    assert_eq!(guard(&["check", "--format", "yaml"]).status.code(), Some(2));
    assert_eq!(guard(&["frobnicate"]).status.code(), Some(2));
}

#[test]
fn surface_lists_match_the_tree() {
    // Meta-test: every declared surface exists in the repo. Catches the
    // rename-without-updating-the-guard failure mode at test time, not
    // just at CI-gate time.
    let root = workspace_root();
    for (path, rules) in osdiv_guard::surface_plan() {
        assert!(
            Path::new(&root.join(path)).is_file(),
            "declared surface {path} is missing — update crates/guard/src/lib.rs"
        );
        assert!(!rules.is_empty());
    }
}
