//! Golden fixture: clamped counterparts of `bad/clamp.rs` — clamping in
//! the binding statement and clamping on a later line both count.
//! Expected findings: 0.

use std::collections::BTreeMap;

const MAX_BUCKETS: usize = 64;
const MAX_WINDOW: usize = 256;

pub struct Params(BTreeMap<String, String>);

impl Params {
    pub fn parse(&self, key: &str) -> Option<usize> {
        self.0.get(key).and_then(|v| v.parse().ok())
    }
}

pub fn histogram(params: &Params) -> Vec<u64> {
    let buckets = params.parse("buckets").unwrap_or(8).min(MAX_BUCKETS);
    let mut counts = Vec::with_capacity(buckets);
    for _ in 0..buckets {
        counts.push(0);
    }
    counts
}

pub fn window(params: &Params) -> Vec<u64> {
    let size = params.parse("size").unwrap_or(16);
    let size = size.min(MAX_WINDOW);
    vec![0; size]
}
