//! Golden fixture: panic-free counterparts of `bad/panic.rs`, plus the
//! deliberate blind spots — `#[cfg(test)]` items and reason-carrying
//! waivers — that must NOT fire. Expected findings: 0, waivers: 1.

pub fn lookup(map: &std::collections::HashMap<String, u32>, key: &str) -> u32 {
    map.get(key).copied().unwrap_or_default()
}

pub fn parse(text: &str) -> u32 {
    text.parse().unwrap_or(0)
}

pub fn dispatch(kind: u8) -> &'static str {
    debug_assert!(kind < 4, "asserts are assertions, not crashes");
    match kind {
        0 => "zero",
        1 => "one",
        _ => "other",
    }
}

pub fn startup(path: &str) -> String {
    // guard: allow(panic) — startup-only config read, not attacker-facing
    std::fs::read_to_string(path).unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_helpers_may_unwrap() {
        let value: u32 = "7".parse().unwrap();
        assert_eq!(value, 7);
    }
}
