//! Golden fixture: well-formed waivers — standalone (applies to the next
//! code line) and trailing (applies to its own line) — suppress exactly
//! their rule. Expected findings: 0, waivers: 2.

pub fn head(bytes: &[u8]) -> u8 {
    // guard: allow(index) — fixture: caller asserts the frame is non-empty
    bytes[0]
}

pub fn magic(bytes: &[u8]) -> u8 {
    bytes[3] // guard: allow(index) — fixture: length checked at entry
}
