//! Golden fixture: indexing-free counterparts of `bad/index.rs`, plus
//! bracket uses (patterns, literals, types) the rule must not confuse
//! with indexing. Expected findings: 0.

pub fn version_byte(header: &[u8]) -> u8 {
    header.get(4).copied().unwrap_or(0)
}

pub fn tail(frame: &[u8], start: usize) -> &[u8] {
    frame.get(start..).unwrap_or_default()
}

pub fn pair(words: &[&str]) -> (&str, &str) {
    let first = words.first().copied().unwrap_or("");
    let second = words.get(1).copied().unwrap_or("");
    (first, second)
}

pub fn swap(values: (u8, u8)) -> [u8; 2] {
    let [a, b] = [values.1, values.0];
    [a, b]
}
