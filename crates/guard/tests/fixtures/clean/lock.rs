//! Golden fixture: lock-disciplined counterparts of `bad/lock.rs` —
//! parse before taking the guard, or drop the guard first (both
//! block-scoping and explicit `drop` count). Expected findings: 0.

use std::sync::RwLock;

pub struct Store {
    inner: RwLock<Vec<String>>,
}

impl Store {
    pub fn reload(&self, feed: &str) {
        let rows = parse_feed(feed);
        {
            let mut guard = self.inner.write().unwrap();
            guard.extend(rows);
        }
        self.notify();
    }

    pub fn swap(&self, feed: &str) {
        let mut guard = self.inner.write().unwrap();
        guard.clear();
        drop(guard);
        let rows = parse_feed(feed);
        let mut guard = self.inner.write().unwrap();
        guard.extend(rows);
    }

    fn notify(&self) {}
}

fn parse_feed(feed: &str) -> Vec<String> {
    feed.lines().map(str::to_string).collect()
}
