//! Golden fixture: guarded counterparts of `bad/arith.rs`, plus
//! arithmetic over non-length values the rule must leave alone.
//! Expected findings: 0.

pub fn split_tail(buffer: &[u8], keep: usize) -> usize {
    buffer.len().saturating_sub(keep)
}

pub fn record_end(offset: usize, count: usize, record_bytes: usize) -> Option<usize> {
    count
        .checked_mul(record_bytes)
        .and_then(|bytes| offset.checked_add(bytes))
}

pub fn consume(remaining: &mut usize, taken: usize) {
    *remaining = remaining.saturating_sub(taken);
}

pub fn scaled(value: u64, factor: u64) -> u64 {
    value * factor
}
