//! Golden fixture: an unclamped request parameter feeding an allocation
//! and a loop bound — the resource-exhaustion shape the `clamp` rule
//! exists for. Expected findings: 1 (one per unclamped binding).

use std::collections::BTreeMap;

pub struct Params(BTreeMap<String, String>);

impl Params {
    pub fn parse(&self, key: &str) -> Option<usize> {
        self.0.get(key).and_then(|v| v.parse().ok())
    }
}

pub fn histogram(params: &Params) -> Vec<u64> {
    let buckets = params.parse("buckets").unwrap_or(8);
    let mut counts = Vec::with_capacity(buckets);
    for _ in 0..buckets {
        counts.push(0);
    }
    counts
}
