//! Golden fixture: a write guard held across a parse call — the lock
//! rule's target shape (readers stalled behind ingestion-length work).
//! Expected findings: 1.

use std::sync::RwLock;

pub struct Store {
    inner: RwLock<Vec<String>>,
}

impl Store {
    pub fn reload(&self, feed: &str) {
        let mut guard = self.inner.write().unwrap();
        let rows = parse_feed(feed);
        guard.extend(rows);
    }
}

fn parse_feed(feed: &str) -> Vec<String> {
    feed.lines().map(str::to_string).collect()
}
