//! Golden fixture: unguarded length/offset arithmetic the `arith` rule
//! flags — the class of bug where a short frame makes `len - header`
//! underflow. Expected findings: 3.

pub fn split_tail(buffer: &[u8], keep: usize) -> usize {
    buffer.len() - keep
}

pub fn record_end(offset: usize, count: usize, record_bytes: usize) -> usize {
    offset + count * record_bytes
}

pub fn consume(remaining: &mut usize, taken: usize) {
    *remaining -= taken;
}
