//! Golden fixture: every panic-capable construct the `panic` rule flags.
//! Expected findings: 6 (unwrap, expect, panic!, todo!, unimplemented!,
//! unreachable!).

pub fn lookup(map: &std::collections::HashMap<String, u32>, key: &str) -> u32 {
    *map.get(key).unwrap()
}

pub fn parse(text: &str) -> u32 {
    text.parse().expect("caller validated")
}

pub fn dispatch(kind: u8) -> &'static str {
    match kind {
        0 => "zero",
        1 => panic!("one is not supported"),
        2 => todo!(),
        3 => unimplemented!(),
        _ => unreachable!(),
    }
}
