//! Golden fixture: malformed waivers are themselves findings and do NOT
//! suppress the violation they sit on. Expected findings under the
//! `index` rule: 2 × `waiver` + 2 × `index`.

pub fn head(bytes: &[u8]) -> u8 {
    // guard: allow(index)
    bytes[0]
}

pub fn second(bytes: &[u8]) -> u8 {
    // guard: allow(frobnicate) — no such rule
    bytes[1]
}
