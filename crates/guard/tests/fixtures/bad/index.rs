//! Golden fixture: bare slice/array indexing the `index` rule flags.
//! Expected findings: 4.

pub fn version_byte(header: &[u8]) -> u8 {
    header[4]
}

pub fn tail(frame: &[u8], start: usize) -> &[u8] {
    &frame[start..]
}

pub fn pair(words: &[&str]) -> (&str, &str) {
    (words[0], words[1])
}
