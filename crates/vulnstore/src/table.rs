//! A small generic table with dense primary keys and secondary indexes.
//!
//! The store only needs a fraction of what a real SQL engine provides:
//! append-only inserts, primary-key lookup, full scans and equality lookups
//! through secondary indexes. [`Table`] provides exactly that, generically
//! over the row type, so each of the Figure 1 tables reuses the same
//! machinery.

use std::collections::HashMap;
use std::hash::Hash;

/// An append-only table of rows with dense `usize` row ids and any number of
/// hash-based secondary indexes.
///
/// # Example
///
/// ```
/// use vulnstore::Table;
///
/// let mut table: Table<&'static str> = Table::new("names");
/// let alice = table.insert("alice");
/// let bob = table.insert("bob");
/// assert_eq!(table.get(alice), Some(&"alice"));
/// assert_eq!(table.len(), 2);
/// assert_eq!(table.scan().filter(|(_, row)| row.starts_with('b')).count(), 1);
/// # let _ = bob;
/// ```
#[derive(Debug, Clone)]
pub struct Table<R> {
    name: &'static str,
    rows: Vec<R>,
}

impl<R> Table<R> {
    /// Creates an empty table with a name (used only for diagnostics).
    pub fn new(name: &'static str) -> Self {
        Table {
            name,
            rows: Vec::new(),
        }
    }

    /// The table name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row and returns its dense row id.
    pub fn insert(&mut self, row: R) -> usize {
        self.rows.push(row);
        self.rows.len() - 1
    }

    /// Looks a row up by its dense id.
    pub fn get(&self, id: usize) -> Option<&R> {
        self.rows.get(id)
    }

    /// Mutable lookup by dense id.
    pub fn get_mut(&mut self, id: usize) -> Option<&mut R> {
        self.rows.get_mut(id)
    }

    /// Iterates over `(row_id, row)` pairs.
    pub fn scan(&self) -> impl Iterator<Item = (usize, &R)> {
        self.rows.iter().enumerate()
    }

    /// Iterates over the rows.
    pub fn iter(&self) -> std::slice::Iter<'_, R> {
        self.rows.iter()
    }

    /// Builds a hash index over the rows using the given key extractor.
    ///
    /// The index maps each key to the list of row ids with that key, in
    /// insertion order. It is a snapshot: rows inserted after the index was
    /// built are not reflected.
    pub fn build_index<K, F>(&self, key_fn: F) -> SecondaryIndex<K>
    where
        K: Eq + Hash,
        F: Fn(&R) -> K,
    {
        let mut map: HashMap<K, Vec<usize>> = HashMap::new();
        for (id, row) in self.scan() {
            map.entry(key_fn(row)).or_default().push(id);
        }
        SecondaryIndex { map }
    }
}

impl<R> Default for Table<R> {
    fn default() -> Self {
        Table::new("unnamed")
    }
}

impl<'a, R> IntoIterator for &'a Table<R> {
    type Item = &'a R;
    type IntoIter = std::slice::Iter<'a, R>;

    fn into_iter(self) -> Self::IntoIter {
        self.rows.iter()
    }
}

impl<R> FromIterator<R> for Table<R> {
    fn from_iter<T: IntoIterator<Item = R>>(iter: T) -> Self {
        let mut table = Table::default();
        for row in iter {
            table.insert(row);
        }
        table
    }
}

impl<R> Extend<R> for Table<R> {
    fn extend<T: IntoIterator<Item = R>>(&mut self, iter: T) {
        for row in iter {
            self.insert(row);
        }
    }
}

/// A snapshot equality index built by [`Table::build_index`].
#[derive(Debug, Clone)]
pub struct SecondaryIndex<K> {
    map: HashMap<K, Vec<usize>>,
}

impl<K: Eq + Hash> SecondaryIndex<K> {
    /// Row ids whose key equals `key`, in insertion order.
    pub fn lookup(&self, key: &K) -> &[usize] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Iterates over `(key, row_ids)` groups (the relational `GROUP BY`).
    pub fn groups(&self) -> impl Iterator<Item = (&K, &[usize])> {
        self.map.iter().map(|(k, v)| (k, v.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_scan() {
        let mut table: Table<u32> = Table::new("numbers");
        assert!(table.is_empty());
        let id0 = table.insert(10);
        let id1 = table.insert(20);
        assert_eq!(id0, 0);
        assert_eq!(id1, 1);
        assert_eq!(table.len(), 2);
        assert_eq!(table.get(id1), Some(&20));
        assert_eq!(table.get(99), None);
        let sum: u32 = table.iter().sum();
        assert_eq!(sum, 30);
        assert_eq!(table.name(), "numbers");
    }

    #[test]
    fn get_mut_updates_rows() {
        let mut table: Table<String> = Table::new("strings");
        let id = table.insert("old".to_string());
        *table.get_mut(id).unwrap() = "new".to_string();
        assert_eq!(table.get(id).map(String::as_str), Some("new"));
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut table: Table<u32> = (0..5).collect();
        assert_eq!(table.len(), 5);
        table.extend(5..8);
        assert_eq!(table.len(), 8);
        let via_ref: Vec<u32> = (&table).into_iter().copied().collect();
        assert_eq!(via_ref, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn secondary_index_groups_rows() {
        let table: Table<(&'static str, u32)> = [
            ("kernel", 1),
            ("driver", 2),
            ("kernel", 3),
            ("app", 4),
            ("kernel", 5),
        ]
        .into_iter()
        .collect();
        let index = table.build_index(|row| row.0);
        assert_eq!(index.distinct_keys(), 3);
        assert_eq!(index.lookup(&"kernel"), &[0, 2, 4]);
        assert_eq!(index.lookup(&"driver"), &[1]);
        assert_eq!(index.lookup(&"missing"), &[] as &[usize]);
        let total_rows: usize = index.groups().map(|(_, ids)| ids.len()).sum();
        assert_eq!(total_rows, table.len());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn every_row_is_reachable_by_its_id(rows in proptest::collection::vec(0u32..1000, 0..100)) {
                let mut table: Table<u32> = Table::new("prop");
                let ids: Vec<usize> = rows.iter().map(|&r| table.insert(r)).collect();
                for (id, expected) in ids.iter().zip(&rows) {
                    prop_assert_eq!(table.get(*id), Some(expected));
                }
                prop_assert_eq!(table.len(), rows.len());
            }

            #[test]
            fn index_partitions_the_table(rows in proptest::collection::vec(0u32..10, 0..200)) {
                let table: Table<u32> = rows.iter().copied().collect();
                let index = table.build_index(|row| *row % 3);
                let total: usize = index.groups().map(|(_, ids)| ids.len()).sum();
                prop_assert_eq!(total, table.len());
                for (key, ids) in index.groups() {
                    for id in ids {
                        prop_assert_eq!(table.get(*id).unwrap() % 3, *key);
                    }
                }
            }
        }
    }
}
