//! Binary row serialization of the store tables (the `STORE` section of
//! the snapshot container, see `docs/SNAPSHOT_FORMAT.md`).
//!
//! Only the three *data* tables are written — `vulnerability`, `os_vuln`
//! and `cvss`. Every derived index (`by_cve`, `by_os`, `cvss_by_vuln`,
//! `os_vuln_by_vuln`) and the constant `os` table are rebuilt
//! deterministically by [`VulnStore::from_rows`] on decode, so the
//! on-disk format carries no redundant state that could drift from the
//! rows it indexes.
//!
//! All integers are little-endian. Strings are a `u32` byte length
//! followed by UTF-8 bytes. A CVSS vector is stored in its canonical
//! `AV:N/AC:L/...` spelling and re-parsed on decode, which also
//! recomputes the denormalized score and access-vector columns.

use std::fmt;

use nvd_model::{CveId, CvssV2, Date, OsDistribution, OsPart, OsSet, Validity};

use crate::schema::{CvssRow, OsVulnRow, VulnId, VulnerabilityRow};
use crate::store::VulnStore;
use crate::StoreError;

/// Version of the row encoding this module writes (the `STORE` section
/// version of the container).
pub const STORE_SECTION_VERSION: u16 = 1;

/// Typed decode failures: the payload is shorter than its own length
/// fields claim, or a field holds a value the schema rejects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RowCodecError {
    /// The payload ended before a field was complete.
    Truncated {
        /// The field being read.
        what: &'static str,
    },
    /// A field holds an out-of-domain value.
    Invalid {
        /// The offending field.
        what: &'static str,
    },
    /// The decoded tables violate a relational invariant.
    Store(StoreError),
}

impl fmt::Display for RowCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RowCodecError::Truncated { what } => {
                write!(f, "store payload truncated while reading {what}")
            }
            RowCodecError::Invalid { what } => write!(f, "store payload holds an invalid {what}"),
            RowCodecError::Store(error) => write!(f, "{error}"),
        }
    }
}

impl std::error::Error for RowCodecError {}

impl From<StoreError> for RowCodecError {
    fn from(error: StoreError) -> Self {
        RowCodecError::Store(error)
    }
}

// ----------------------------------------------------------------------
// Primitive writers/readers
// ----------------------------------------------------------------------

fn put_u8(out: &mut Vec<u8>, value: u8) {
    out.push(value);
}

fn put_u16(out: &mut Vec<u8>, value: u16) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, value: &str) {
    put_u32(out, value.len() as u32);
    out.extend_from_slice(value.as_bytes());
}

/// A bounds-checked little-endian reader over a byte slice.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], RowCodecError> {
        let slice = self
            .pos
            .checked_add(n)
            .and_then(|end| self.bytes.get(self.pos..end))
            .ok_or(RowCodecError::Truncated { what })?;
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, RowCodecError> {
        self.take(1, what)?
            .first()
            .copied()
            .ok_or(RowCodecError::Truncated { what })
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, RowCodecError> {
        <[u8; 2]>::try_from(self.take(2, what)?)
            .map(u16::from_le_bytes)
            .map_err(|_| RowCodecError::Truncated { what })
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, RowCodecError> {
        <[u8; 4]>::try_from(self.take(4, what)?)
            .map(u32::from_le_bytes)
            .map_err(|_| RowCodecError::Truncated { what })
    }

    fn string(&mut self, what: &'static str) -> Result<String, RowCodecError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| RowCodecError::Invalid { what })
    }

    fn finished(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

// ----------------------------------------------------------------------
// Enum tags
// ----------------------------------------------------------------------

fn part_tag(part: Option<OsPart>) -> u8 {
    match part {
        None => 0,
        Some(OsPart::Driver) => 1,
        Some(OsPart::Kernel) => 2,
        Some(OsPart::SystemSoftware) => 3,
        Some(OsPart::Application) => 4,
    }
}

fn part_from_tag(tag: u8) -> Result<Option<OsPart>, RowCodecError> {
    Ok(match tag {
        0 => None,
        1 => Some(OsPart::Driver),
        2 => Some(OsPart::Kernel),
        3 => Some(OsPart::SystemSoftware),
        4 => Some(OsPart::Application),
        _ => {
            return Err(RowCodecError::Invalid {
                what: "OS-part tag",
            })
        }
    })
}

fn validity_tag(validity: Validity) -> u8 {
    match validity {
        Validity::Valid => 0,
        Validity::Unknown => 1,
        Validity::Unspecified => 2,
        Validity::Disputed => 3,
    }
}

fn validity_from_tag(tag: u8) -> Result<Validity, RowCodecError> {
    Ok(match tag {
        0 => Validity::Valid,
        1 => Validity::Unknown,
        2 => Validity::Unspecified,
        3 => Validity::Disputed,
        _ => {
            return Err(RowCodecError::Invalid {
                what: "validity tag",
            })
        }
    })
}

// ----------------------------------------------------------------------
// Table codec
// ----------------------------------------------------------------------

/// Serializes the three data tables of a store into `out` (appending).
pub fn encode_store(store: &VulnStore, out: &mut Vec<u8>) {
    put_u32(out, store.vulnerability_count() as u32);
    for row in store.rows() {
        put_u16(out, row.cve.year());
        put_u32(out, row.cve.number());
        put_u16(out, row.published.year());
        put_u8(out, row.published.month());
        put_u8(out, row.published.day());
        put_u8(out, part_tag(row.part));
        put_u8(out, validity_tag(row.validity));
        put_u16(out, row.os_set.bits());
        put_str(out, &row.summary);
    }
    put_u32(out, store.os_vuln_count() as u32);
    for row in store.os_vuln_rows() {
        put_u32(out, row.vuln.0);
        put_u8(out, row.os.index() as u8);
        put_u32(out, row.versions.len() as u32);
        for version in &row.versions {
            put_str(out, version);
        }
    }
    let cvss: Vec<_> = store.cvss_rows().collect();
    put_u32(out, cvss.len() as u32);
    for row in cvss {
        put_u32(out, row.vuln.0);
        put_str(out, &row.vector.to_string());
    }
}

/// Decodes a payload written by [`encode_store`] and rebuilds the full
/// store (tables + derived indexes).
///
/// # Errors
///
/// [`RowCodecError::Truncated`] / [`RowCodecError::Invalid`] for a
/// malformed payload, [`RowCodecError::Store`] when the decoded tables
/// violate a relational invariant. Never panics.
pub fn decode_store(payload: &[u8]) -> Result<VulnStore, RowCodecError> {
    let mut cursor = Cursor::new(payload);
    let vuln_count = cursor.u32("vulnerability count")?;
    let mut vulnerabilities = Vec::new();
    for id in 0..vuln_count {
        let cve_year = cursor.u16("CVE year")?;
        let cve_number = cursor.u32("CVE number")?;
        let year = cursor.u16("publication year")?;
        let month = cursor.u8("publication month")?;
        let day = cursor.u8("publication day")?;
        let published = Date::new(year, month, day).map_err(|_| RowCodecError::Invalid {
            what: "publication date",
        })?;
        let part = part_from_tag(cursor.u8("OS-part tag")?)?;
        let validity = validity_from_tag(cursor.u8("validity tag")?)?;
        let bits = cursor.u16("OS set")?;
        if bits >= 1 << OsDistribution::COUNT {
            return Err(RowCodecError::Invalid { what: "OS set" });
        }
        let summary = cursor.string("summary")?;
        vulnerabilities.push(VulnerabilityRow {
            id: VulnId(id),
            cve: CveId::new(cve_year, cve_number),
            published,
            summary,
            part,
            validity,
            os_set: OsSet::from_bits(bits),
        });
    }
    let os_vuln_count = cursor.u32("os_vuln count")?;
    let mut os_vuln = Vec::new();
    for _ in 0..os_vuln_count {
        let vuln = VulnId(cursor.u32("os_vuln foreign key")?);
        let os = OsDistribution::from_index(cursor.u8("OS index")? as usize)
            .ok_or(RowCodecError::Invalid { what: "OS index" })?;
        let version_count = cursor.u32("version count")?;
        let mut versions = Vec::new();
        for _ in 0..version_count {
            versions.push(cursor.string("version string")?);
        }
        os_vuln.push(OsVulnRow { vuln, os, versions });
    }
    let cvss_count = cursor.u32("cvss count")?;
    let mut cvss = Vec::new();
    for _ in 0..cvss_count {
        let vuln = VulnId(cursor.u32("cvss foreign key")?);
        let vector: CvssV2 =
            cursor
                .string("CVSS vector")?
                .parse()
                .map_err(|_| RowCodecError::Invalid {
                    what: "CVSS vector",
                })?;
        // `CvssRow::new` recomputes the denormalized score and access
        // vector, so those columns can never disagree with the vector.
        cvss.push(CvssRow::new(vuln, vector));
    }
    if !cursor.finished() {
        return Err(RowCodecError::Invalid {
            what: "trailing bytes after the last table",
        });
    }
    Ok(VulnStore::from_rows(vulnerabilities, os_vuln, cvss)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvd_model::VulnerabilityEntry;

    fn sample_store() -> VulnStore {
        let mut store = VulnStore::new();
        let a = VulnerabilityEntry::builder(CveId::new(2008, 1447))
            .published(Date::new(2008, 7, 8).unwrap())
            .summary("DNS cache poisoning")
            .part(OsPart::SystemSoftware)
            .cvss(CvssV2::typical_remote())
            .affects_os_version(OsDistribution::Debian, "4.0")
            .affects_os(OsDistribution::FreeBsd)
            .build()
            .unwrap();
        let b = VulnerabilityEntry::builder(CveId::new(2004, 230))
            .published(Date::new(2004, 4, 20).unwrap())
            .summary("TCP reset with spoofed packets")
            .affects_os(OsDistribution::Windows2000)
            .build()
            .unwrap();
        store.insert_entry(&a);
        store.insert_entry(&b);
        // A merge exercises the append-after-the-fact os_vuln order.
        let merged = VulnerabilityEntry::builder(CveId::new(2004, 230))
            .published(Date::new(2004, 4, 18).unwrap())
            .affects_os(OsDistribution::Windows2003)
            .cvss(CvssV2::typical_local())
            .build()
            .unwrap();
        store.insert_entry(&merged);
        store
    }

    #[test]
    fn encode_decode_round_trips_rows_and_indexes() {
        let store = sample_store();
        let mut payload = Vec::new();
        encode_store(&store, &mut payload);
        let decoded = decode_store(&payload).unwrap();
        assert_eq!(decoded.vulnerability_count(), store.vulnerability_count());
        assert_eq!(decoded.os_vuln_count(), store.os_vuln_count());
        let rows: Vec<_> = store.rows().cloned().collect();
        let decoded_rows: Vec<_> = decoded.rows().cloned().collect();
        assert_eq!(rows, decoded_rows);
        for os in OsDistribution::ALL {
            assert_eq!(
                store
                    .vulnerabilities_for_os(os)
                    .iter()
                    .map(|r| r.id)
                    .collect::<Vec<_>>(),
                decoded
                    .vulnerabilities_for_os(os)
                    .iter()
                    .map(|r| r.id)
                    .collect::<Vec<_>>(),
                "per-OS index order must survive the round trip"
            );
        }
        for row in store.rows() {
            assert_eq!(store.cvss_for(row.id), decoded.cvss_for(row.id));
            assert_eq!(
                store.os_vuln_rows_for(row.id),
                decoded.os_vuln_rows_for(row.id)
            );
        }
        assert!(decoded.affects_release(VulnId(0), OsDistribution::Debian, "4.0"));
    }

    #[test]
    fn truncated_payloads_answer_typed_errors() {
        let store = sample_store();
        let mut payload = Vec::new();
        encode_store(&store, &mut payload);
        for cut in [0, 1, 3, payload.len() / 2, payload.len() - 1] {
            assert!(
                matches!(
                    decode_store(&payload[..cut]),
                    Err(RowCodecError::Truncated { .. })
                ),
                "cut at {cut} must be a typed truncation"
            );
        }
    }

    #[test]
    fn out_of_domain_fields_are_invalid() {
        // A single vulnerability row with an impossible month.
        let mut payload = Vec::new();
        put_u32(&mut payload, 1);
        put_u16(&mut payload, 2008);
        put_u32(&mut payload, 1);
        put_u16(&mut payload, 2008);
        put_u8(&mut payload, 13); // month
        put_u8(&mut payload, 1);
        put_u8(&mut payload, 0);
        put_u8(&mut payload, 0);
        put_u16(&mut payload, 1);
        put_str(&mut payload, "x");
        put_u32(&mut payload, 0);
        put_u32(&mut payload, 0);
        assert!(matches!(
            decode_store(&payload),
            Err(RowCodecError::Invalid {
                what: "publication date"
            })
        ));
    }

    #[test]
    fn dangling_foreign_keys_are_store_errors() {
        let mut payload = Vec::new();
        put_u32(&mut payload, 0); // no vulnerabilities
        put_u32(&mut payload, 1); // …but one join row
        put_u32(&mut payload, 7);
        put_u8(&mut payload, 0);
        put_u32(&mut payload, 0);
        put_u32(&mut payload, 0);
        assert!(matches!(
            decode_store(&payload),
            Err(RowCodecError::Store(StoreError::Inconsistent { .. }))
        ));
    }
}
