//! Typed rows for the tables of the paper's database schema (Figure 1).
//!
//! The paper's schema has five groups of tables: `vulnerability`,
//! `vulnerability_type`, `os`, `os_vuln` and the `cvss` tables. The
//! `vulnerability_type` and `cvss` information is small enough to be stored
//! as columns of [`VulnerabilityRow`] / a dedicated [`CvssRow`], but the
//! separation into row structs keeps the mapping to Figure 1 explicit.

use nvd_model::{
    AccessVector, CveId, CvssV2, Date, OsDistribution, OsFamily, OsPart, OsSet, Validity,
};

/// Internal, dense identifier of a vulnerability row (primary key of the
/// `vulnerability` table). Dense ids keep the `os_vuln` join table compact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VulnId(pub u32);

impl VulnId {
    /// The row index this id corresponds to.
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

/// A row of the `vulnerability` table: name, publication date, summary and
/// the hand-assigned enrichments (type, validity).
#[derive(Debug, Clone, PartialEq)]
pub struct VulnerabilityRow {
    /// Dense primary key.
    pub id: VulnId,
    /// The CVE identifier (unique key).
    pub cve: CveId,
    /// Publication date.
    pub published: Date,
    /// Entry summary.
    pub summary: String,
    /// The OS-part classification (`vulnerability_type` table in Figure 1).
    pub part: Option<OsPart>,
    /// Validity flag (valid / unknown / unspecified / disputed).
    pub validity: Validity,
    /// The set of studied OS distributions affected (denormalized from
    /// `os_vuln` for fast set queries).
    pub os_set: OsSet,
}

impl VulnerabilityRow {
    /// Publication year, used by the temporal analyses.
    pub fn year(&self) -> u16 {
        self.published.year()
    }

    /// Whether the row survives the paper's validity filter.
    pub fn is_valid(&self) -> bool {
        self.validity.is_valid()
    }
}

/// A row of the `os` table: one of the 11 studied distributions with the
/// hand-assigned family name and release year.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OsRow {
    /// The distribution (primary key; its index is the row id).
    pub os: OsDistribution,
    /// The OS family assigned by hand in the paper's database.
    pub family: OsFamily,
    /// Year of the first release.
    pub first_release_year: u16,
}

impl OsRow {
    /// Builds the row for a distribution.
    pub fn new(os: OsDistribution) -> Self {
        OsRow {
            os,
            family: os.family(),
            first_release_year: os.first_release_year(),
        }
    }
}

/// A row of the `os_vuln` join table: one (vulnerability, OS) pair together
/// with the affected version strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OsVulnRow {
    /// Foreign key into the `vulnerability` table.
    pub vuln: VulnId,
    /// The affected distribution.
    pub os: OsDistribution,
    /// Affected version strings (empty means "all versions").
    pub versions: Vec<String>,
}

impl OsVulnRow {
    /// Whether the given release version is affected (empty list = all).
    pub fn affects_version(&self, version: &str) -> bool {
        self.versions.is_empty() || self.versions.iter().any(|v| v == version)
    }
}

/// A row of the `cvss` table: the scoring information of one vulnerability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CvssRow {
    /// Foreign key into the `vulnerability` table.
    pub vuln: VulnId,
    /// The full base vector.
    pub vector: CvssV2,
    /// The base score (denormalized for convenience).
    pub score: f64,
    /// The access vector (the column the paper's *No Local* filter uses).
    pub access_vector: AccessVector,
}

impl CvssRow {
    /// Builds the row for a vulnerability's CVSS vector.
    pub fn new(vuln: VulnId, vector: CvssV2) -> Self {
        CvssRow {
            vuln,
            vector,
            score: vector.base_score(),
            access_vector: vector.access_vector(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn os_row_carries_family_and_release_year() {
        let row = OsRow::new(OsDistribution::Windows2003);
        assert_eq!(row.family, OsFamily::Windows);
        assert_eq!(row.first_release_year, 2003);
    }

    #[test]
    fn os_vuln_version_matching() {
        let row = OsVulnRow {
            vuln: VulnId(0),
            os: OsDistribution::Debian,
            versions: vec!["4.0".to_string()],
        };
        assert!(row.affects_version("4.0"));
        assert!(!row.affects_version("3.0"));
        let all = OsVulnRow {
            vuln: VulnId(0),
            os: OsDistribution::Debian,
            versions: vec![],
        };
        assert!(all.affects_version("anything"));
    }

    #[test]
    fn cvss_row_denormalizes_score_and_access_vector() {
        let vector: CvssV2 = "AV:L/AC:L/Au:N/C:P/I:P/A:P".parse().unwrap();
        let row = CvssRow::new(VulnId(3), vector);
        assert_eq!(row.score, 4.6);
        assert_eq!(row.access_vector, AccessVector::Local);
    }

    #[test]
    fn vulnerability_row_helpers() {
        let row = VulnerabilityRow {
            id: VulnId(7),
            cve: CveId::new(2006, 99),
            published: Date::new(2006, 6, 1).unwrap(),
            summary: "test".to_string(),
            part: Some(OsPart::Kernel),
            validity: Validity::Valid,
            os_set: OsSet::singleton(OsDistribution::Solaris),
        };
        assert_eq!(row.year(), 2006);
        assert!(row.is_valid());
        assert_eq!(VulnId(7).index(), 7);
    }
}
