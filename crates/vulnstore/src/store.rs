//! The [`VulnStore`] facade: ingestion and relational queries.

use std::collections::HashMap;

use nvd_model::{AccessVector, CveId, OsDistribution, OsPart, OsSet, Validity, VulnerabilityEntry};

use crate::schema::{CvssRow, OsRow, OsVulnRow, VulnId, VulnerabilityRow};
use crate::table::Table;
use crate::StoreError;

/// The in-memory database with the tables of Figure 1 of the paper.
///
/// Ingestion is by [`VulnerabilityEntry`]; queries expose both row-level
/// access (for the analysis crates to aggregate as they wish) and the common
/// joins (vulnerabilities per OS, CVSS per vulnerability, affected versions
/// per OS).
#[derive(Debug, Clone, Default)]
pub struct VulnStore {
    vulnerabilities: Table<VulnerabilityRow>,
    os: Table<OsRow>,
    os_vuln: Table<OsVulnRow>,
    cvss: Table<CvssRow>,
    /// Unique index `vulnerability.cve -> vulnerability.id`.
    by_cve: HashMap<CveId, VulnId>,
    /// Index `os -> [vulnerability.id]` (insertion order).
    by_os: Vec<Vec<VulnId>>,
    /// Index `vulnerability.id -> cvss row id`.
    cvss_by_vuln: HashMap<VulnId, usize>,
    /// Index `vulnerability.id -> [os_vuln row ids]`.
    os_vuln_by_vuln: HashMap<VulnId, Vec<usize>>,
}

impl VulnStore {
    /// Creates an empty store with the `os` table pre-populated with the 11
    /// studied distributions (as the paper's database was).
    pub fn new() -> Self {
        let mut store = VulnStore {
            vulnerabilities: Table::new("vulnerability"),
            os: Table::new("os"),
            os_vuln: Table::new("os_vuln"),
            cvss: Table::new("cvss"),
            by_cve: HashMap::new(),
            by_os: vec![Vec::new(); OsDistribution::COUNT],
            cvss_by_vuln: HashMap::new(),
            os_vuln_by_vuln: HashMap::new(),
        };
        for os in OsDistribution::ALL {
            store.os.insert(OsRow::new(os));
        }
        store
    }

    // ------------------------------------------------------------------
    // Ingestion
    // ------------------------------------------------------------------

    /// Inserts an entry, merging with any previously stored entry with the
    /// same CVE identifier (the affected OS sets are unioned, the first
    /// summary/classification wins). Returns the row id.
    pub fn insert_entry(&mut self, entry: &VulnerabilityEntry) -> VulnId {
        match self.by_cve.get(&entry.id()).copied() {
            Some(existing) => {
                self.merge_into(existing, entry);
                existing
            }
            None => self.insert_new(entry),
        }
    }

    /// Inserts an entry, failing if the CVE identifier is already stored.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::DuplicateVulnerability`] when the identifier is
    /// already present.
    pub fn try_insert_entry(&mut self, entry: &VulnerabilityEntry) -> Result<VulnId, StoreError> {
        if self.by_cve.contains_key(&entry.id()) {
            return Err(StoreError::DuplicateVulnerability { id: entry.id() });
        }
        Ok(self.insert_new(entry))
    }

    /// Ingests every entry of an iterator (merging duplicates) and returns
    /// the number of *new* rows created.
    pub fn ingest<'a, I>(&mut self, entries: I) -> usize
    where
        I: IntoIterator<Item = &'a VulnerabilityEntry>,
    {
        let before = self.vulnerabilities.len();
        for entry in entries {
            self.insert_entry(entry);
        }
        self.vulnerabilities.len() - before
    }

    fn insert_new(&mut self, entry: &VulnerabilityEntry) -> VulnId {
        let os_set = entry.affected_os_set();
        let id = VulnId(self.vulnerabilities.len() as u32);
        self.vulnerabilities.insert(VulnerabilityRow {
            id,
            cve: entry.id(),
            published: entry.published(),
            summary: entry.summary().to_string(),
            part: entry.part(),
            validity: entry.validity(),
            os_set,
        });
        self.by_cve.insert(entry.id(), id);

        for os in os_set {
            self.by_os[os.index()].push(id);
        }
        // One os_vuln row per affected product that clusters into an OS, so
        // version information is preserved per (vulnerability, OS).
        let mut versions_per_os: HashMap<OsDistribution, Vec<String>> = HashMap::new();
        for product in entry.affected() {
            if let Some(os) = product.os() {
                versions_per_os
                    .entry(os)
                    .or_default()
                    .extend(product.versions().iter().cloned());
            }
        }
        for os in os_set {
            let versions = versions_per_os.remove(&os).unwrap_or_default();
            let row_id = self.os_vuln.insert(OsVulnRow {
                vuln: id,
                os,
                versions,
            });
            self.os_vuln_by_vuln.entry(id).or_default().push(row_id);
        }
        if let Some(cvss) = entry.cvss() {
            let row_id = self.cvss.insert(CvssRow::new(id, *cvss));
            self.cvss_by_vuln.insert(id, row_id);
        }
        id
    }

    fn merge_into(&mut self, id: VulnId, entry: &VulnerabilityEntry) {
        let new_oses: Vec<OsDistribution> = {
            let row = self
                .vulnerabilities
                .get(id.index())
                .expect("index by_cve points at an existing row");
            entry
                .affected_os_set()
                .difference(row.os_set)
                .iter()
                .collect()
        };
        if let Some(row) = self.vulnerabilities.get_mut(id.index()) {
            for os in &new_oses {
                row.os_set.insert(*os);
            }
            if row.part.is_none() {
                row.part = entry.part();
            }
            if row.summary.is_empty() {
                row.summary = entry.summary().to_string();
            }
            if entry.published() < row.published {
                row.published = entry.published();
            }
        }
        for os in new_oses {
            self.by_os[os.index()].push(id);
            let row_id = self.os_vuln.insert(OsVulnRow {
                vuln: id,
                os,
                versions: Vec::new(),
            });
            self.os_vuln_by_vuln.entry(id).or_default().push(row_id);
        }
        if !self.cvss_by_vuln.contains_key(&id) {
            if let Some(cvss) = entry.cvss() {
                let row_id = self.cvss.insert(CvssRow::new(id, *cvss));
                self.cvss_by_vuln.insert(id, row_id);
            }
        }
    }

    /// Reconstructs a store from the three persisted tables, rebuilding
    /// every derived index from table scan order.
    ///
    /// [`insert_entry`](VulnStore::insert_entry) appends `os_vuln` rows
    /// and pushes into `by_os` in the same loop, so the global `os_vuln`
    /// table order *is* the per-OS insertion order — a single in-order
    /// scan reproduces `by_os`, `os_vuln_by_vuln`, `cvss_by_vuln` and
    /// `by_cve` exactly as ingestion built them.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Inconsistent`] when the tables violate a
    /// relational invariant: row ids out of order, duplicate CVE keys,
    /// dangling foreign keys, duplicate `(vulnerability, OS)` pairs, an
    /// `os_set` disagreeing with the join table, or more than one CVSS
    /// row per vulnerability.
    pub fn from_rows(
        vulnerabilities: Vec<VulnerabilityRow>,
        os_vuln: Vec<OsVulnRow>,
        cvss: Vec<CvssRow>,
    ) -> Result<VulnStore, StoreError> {
        let inconsistent = |what: &'static str| StoreError::Inconsistent { what };
        let mut store = VulnStore::new();
        for (position, row) in vulnerabilities.iter().enumerate() {
            if row.id.index() != position {
                return Err(inconsistent("vulnerability row id != row position"));
            }
            if store.by_cve.insert(row.cve, row.id).is_some() {
                return Err(inconsistent("duplicate CVE identifier"));
            }
        }
        let vuln_count = vulnerabilities.len();
        let mut joined_sets = vec![OsSet::new(); vuln_count];
        for (row_id, row) in os_vuln.iter().enumerate() {
            if row.vuln.index() >= vuln_count {
                return Err(inconsistent(
                    "os_vuln row references a missing vulnerability",
                ));
            }
            if joined_sets[row.vuln.index()].contains(row.os) {
                return Err(inconsistent("duplicate (vulnerability, OS) join row"));
            }
            joined_sets[row.vuln.index()].insert(row.os);
            store.by_os[row.os.index()].push(row.vuln);
            store
                .os_vuln_by_vuln
                .entry(row.vuln)
                .or_default()
                .push(row_id);
        }
        for (row, joined) in vulnerabilities.iter().zip(&joined_sets) {
            if row.os_set != *joined {
                return Err(inconsistent("os_set disagrees with the os_vuln join table"));
            }
        }
        for (row_id, row) in cvss.iter().enumerate() {
            if row.vuln.index() >= vuln_count {
                return Err(inconsistent("cvss row references a missing vulnerability"));
            }
            if store.cvss_by_vuln.insert(row.vuln, row_id).is_some() {
                return Err(inconsistent("more than one cvss row per vulnerability"));
            }
        }
        store.vulnerabilities.extend(vulnerabilities);
        store.os_vuln.extend(os_vuln);
        store.cvss.extend(cvss);
        Ok(store)
    }

    // ------------------------------------------------------------------
    // Row access
    // ------------------------------------------------------------------

    /// Number of distinct vulnerabilities stored (valid or not).
    pub fn vulnerability_count(&self) -> usize {
        self.vulnerabilities.len()
    }

    /// Number of rows in the `os_vuln` join table.
    pub fn os_vuln_count(&self) -> usize {
        self.os_vuln.len()
    }

    /// A rough estimate of the store's resident memory: struct sizes of
    /// every row plus the owned string payloads. Used by the serving
    /// registry's capacity accounting, where "roughly proportional to the
    /// real footprint" is all that matters.
    pub fn estimated_bytes(&self) -> usize {
        let mut bytes = std::mem::size_of::<Self>();
        bytes += self
            .vulnerabilities
            .iter()
            .map(|row| std::mem::size_of::<VulnerabilityRow>() + row.summary.len())
            .sum::<usize>();
        bytes += self.os.len() * std::mem::size_of::<OsRow>();
        bytes += self
            .os_vuln
            .iter()
            .map(|row| {
                std::mem::size_of::<OsVulnRow>()
                    + row
                        .versions
                        .iter()
                        .map(|v| std::mem::size_of::<String>() + v.len())
                        .sum::<usize>()
            })
            .sum::<usize>();
        bytes += self.cvss.len() * std::mem::size_of::<CvssRow>();
        bytes += self.by_cve.len() * std::mem::size_of::<(CveId, VulnId)>();
        bytes += self
            .by_os
            .iter()
            .map(|ids| ids.len() * std::mem::size_of::<VulnId>())
            .sum::<usize>();
        bytes += (self.cvss_by_vuln.len() + self.os_vuln_by_vuln.len())
            * std::mem::size_of::<(VulnId, usize)>();
        bytes += self
            .os_vuln_by_vuln
            .values()
            .map(|ids| ids.len() * std::mem::size_of::<usize>())
            .sum::<usize>();
        bytes
    }

    /// The rows of the `os` table (always the 11 studied distributions).
    pub fn os_rows(&self) -> impl Iterator<Item = &OsRow> {
        self.os.iter()
    }

    /// Looks a vulnerability row up by its dense id.
    pub fn get(&self, id: VulnId) -> Option<&VulnerabilityRow> {
        self.vulnerabilities.get(id.index())
    }

    /// Looks a vulnerability row up by CVE identifier.
    pub fn get_by_cve(&self, cve: CveId) -> Option<&VulnerabilityRow> {
        self.by_cve.get(&cve).and_then(|id| self.get(*id))
    }

    /// Iterates over every vulnerability row.
    pub fn rows(&self) -> impl Iterator<Item = &VulnerabilityRow> {
        self.vulnerabilities.iter()
    }

    /// Iterates over the rows that survive the paper's validity filter.
    pub fn valid_rows(&self) -> impl Iterator<Item = &VulnerabilityRow> {
        self.rows().filter(|row| row.is_valid())
    }

    /// Number of valid (study-relevant) vulnerabilities.
    pub fn valid_count(&self) -> usize {
        self.valid_rows().count()
    }

    /// Number of vulnerabilities with the given validity flag.
    pub fn count_by_validity(&self, validity: Validity) -> usize {
        self.rows().filter(|row| row.validity == validity).count()
    }

    /// The vulnerability rows affecting a given OS (valid and invalid).
    pub fn vulnerabilities_for_os(&self, os: OsDistribution) -> Vec<&VulnerabilityRow> {
        self.by_os[os.index()]
            .iter()
            .filter_map(|id| self.get(*id))
            .collect()
    }

    /// The CVSS row of a vulnerability, if one was stored.
    pub fn cvss_for(&self, id: VulnId) -> Option<&CvssRow> {
        self.cvss_by_vuln
            .get(&id)
            .and_then(|row_id| self.cvss.get(*row_id))
    }

    /// The access vector of a vulnerability. Entries without CVSS data are
    /// treated as remotely exploitable (the conservative default the model
    /// layer also uses).
    pub fn access_vector_for(&self, id: VulnId) -> AccessVector {
        self.cvss_for(id)
            .map(|row| row.access_vector)
            .unwrap_or(AccessVector::Network)
    }

    /// Whether a vulnerability is remotely exploitable.
    pub fn is_remote(&self, id: VulnId) -> bool {
        self.access_vector_for(id).is_remote()
    }

    /// Iterates over every vulnerability row joined with its
    /// remote-exploitability flag — the one-pass input of the analysis
    /// layer's count-index build, which needs `(os_set, year, part, remote)`
    /// per row without a per-row index lookup at every call site.
    pub fn rows_with_remote(&self) -> impl Iterator<Item = (&VulnerabilityRow, bool)> {
        self.rows().map(|row| (row, self.is_remote(row.id)))
    }

    /// Iterates over the whole `os_vuln` join table in insertion order —
    /// the order [`VulnStore::from_rows`] rebuilds the per-OS indexes
    /// from, so serializing this scan round-trips the store exactly.
    pub fn os_vuln_rows(&self) -> impl Iterator<Item = &OsVulnRow> {
        self.os_vuln.iter()
    }

    /// Iterates over the whole `cvss` table in insertion order.
    pub fn cvss_rows(&self) -> impl Iterator<Item = &CvssRow> {
        self.cvss.iter()
    }

    /// The `os_vuln` rows of a vulnerability (one per affected OS).
    pub fn os_vuln_rows_for(&self, id: VulnId) -> Vec<&OsVulnRow> {
        self.os_vuln_by_vuln
            .get(&id)
            .map(|rows| rows.iter().filter_map(|r| self.os_vuln.get(*r)).collect())
            .unwrap_or_default()
    }

    /// Whether a vulnerability affects a specific release of a distribution.
    /// A vulnerability with no version information for that OS is counted as
    /// affecting every release.
    pub fn affects_release(&self, id: VulnId, os: OsDistribution, version: &str) -> bool {
        self.os_vuln_rows_for(id)
            .iter()
            .any(|row| row.os == os && row.affects_version(version))
    }

    /// Updates the OS-part classification of a vulnerability (the manual
    /// enrichment step of Section III-B, performed here by the classifier
    /// crate).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NotFound`] if the id does not exist.
    pub fn set_part(&mut self, id: VulnId, part: OsPart) -> Result<(), StoreError> {
        match self.vulnerabilities.get_mut(id.index()) {
            Some(row) => {
                row.part = Some(part);
                Ok(())
            }
            None => Err(StoreError::NotFound {
                what: "vulnerability row",
            }),
        }
    }

    /// Updates the validity flag of a vulnerability.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NotFound`] if the id does not exist.
    pub fn set_validity(&mut self, id: VulnId, validity: Validity) -> Result<(), StoreError> {
        match self.vulnerabilities.get_mut(id.index()) {
            Some(row) => {
                row.validity = validity;
                Ok(())
            }
            None => Err(StoreError::NotFound {
                what: "vulnerability row",
            }),
        }
    }

    // ------------------------------------------------------------------
    // Set-level queries used throughout the analysis
    // ------------------------------------------------------------------

    /// Valid vulnerability rows whose affected set contains **all** members
    /// of `group` — the common vulnerabilities of a replica group.
    pub fn shared_by_all(&self, group: OsSet) -> Vec<&VulnerabilityRow> {
        self.valid_rows()
            .filter(|row| group.is_subset_of(&row.os_set))
            .collect()
    }

    /// Valid vulnerability rows whose affected set intersects `group`.
    pub fn affecting_any(&self, group: OsSet) -> Vec<&VulnerabilityRow> {
        self.valid_rows()
            .filter(|row| group.intersects(&row.os_set))
            .collect()
    }
}

/// Builds a store directly from an iterator of entries.
impl<'a> FromIterator<&'a VulnerabilityEntry> for VulnStore {
    fn from_iter<T: IntoIterator<Item = &'a VulnerabilityEntry>>(iter: T) -> Self {
        let mut store = VulnStore::new();
        store.ingest(iter);
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvd_model::{CvssV2, Date};

    fn entry(
        cve: CveId,
        year: u16,
        part: OsPart,
        remote: bool,
        oses: &[OsDistribution],
    ) -> VulnerabilityEntry {
        let mut builder = VulnerabilityEntry::builder(cve)
            .published(Date::new(year, 6, 15).unwrap())
            .summary(format!("synthetic vulnerability {cve}"))
            .part(part)
            .cvss(if remote {
                CvssV2::typical_remote()
            } else {
                CvssV2::typical_local()
            });
        for os in oses {
            builder = builder.affects_os(*os);
        }
        builder.build().unwrap()
    }

    #[test]
    fn new_store_has_the_eleven_os_rows() {
        let store = VulnStore::new();
        assert_eq!(store.os_rows().count(), 11);
        assert_eq!(store.vulnerability_count(), 0);
        assert_eq!(store.valid_count(), 0);
    }

    #[test]
    fn insert_and_query_round_trip() {
        let mut store = VulnStore::new();
        let e = entry(
            CveId::new(2008, 1447),
            2008,
            OsPart::SystemSoftware,
            true,
            &[OsDistribution::Debian, OsDistribution::FreeBsd],
        );
        let id = store.insert_entry(&e);
        assert_eq!(store.vulnerability_count(), 1);
        assert_eq!(store.os_vuln_count(), 2);
        let row = store.get(id).unwrap();
        assert_eq!(row.cve, CveId::new(2008, 1447));
        assert_eq!(row.os_set.len(), 2);
        assert_eq!(store.get_by_cve(CveId::new(2008, 1447)).unwrap().id, id);
        assert!(store.is_remote(id));
        assert_eq!(
            store.vulnerabilities_for_os(OsDistribution::Debian).len(),
            1
        );
        assert_eq!(
            store.vulnerabilities_for_os(OsDistribution::Solaris).len(),
            0
        );
    }

    #[test]
    fn try_insert_rejects_duplicates_but_insert_merges() {
        let mut store = VulnStore::new();
        let a = entry(
            CveId::new(2004, 230),
            2004,
            OsPart::Kernel,
            true,
            &[OsDistribution::Windows2000],
        );
        let b = entry(
            CveId::new(2004, 230),
            2004,
            OsPart::Kernel,
            true,
            &[OsDistribution::Windows2003],
        );
        let id = store.try_insert_entry(&a).unwrap();
        assert!(matches!(
            store.try_insert_entry(&b),
            Err(StoreError::DuplicateVulnerability { .. })
        ));
        let merged_id = store.insert_entry(&b);
        assert_eq!(merged_id, id);
        assert_eq!(store.vulnerability_count(), 1);
        let row = store.get(id).unwrap();
        assert!(row.os_set.contains(OsDistribution::Windows2000));
        assert!(row.os_set.contains(OsDistribution::Windows2003));
        // Both OS indexes know the vulnerability.
        assert_eq!(
            store
                .vulnerabilities_for_os(OsDistribution::Windows2003)
                .len(),
            1
        );
    }

    #[test]
    fn ingest_counts_new_rows_only() {
        let mut store = VulnStore::new();
        let a = entry(
            CveId::new(2005, 1),
            2005,
            OsPart::Kernel,
            true,
            &[OsDistribution::OpenBsd],
        );
        let b = entry(
            CveId::new(2005, 2),
            2005,
            OsPart::Kernel,
            true,
            &[OsDistribution::NetBsd],
        );
        let duplicate = a.clone();
        let new_rows = store.ingest([&a, &b, &duplicate]);
        assert_eq!(new_rows, 2);
        assert_eq!(store.vulnerability_count(), 2);
    }

    #[test]
    fn validity_counts() {
        let mut store = VulnStore::new();
        let mut valid = entry(
            CveId::new(2006, 1),
            2006,
            OsPart::Kernel,
            true,
            &[OsDistribution::Solaris],
        );
        valid.set_validity(Validity::Valid);
        let mut unknown = entry(
            CveId::new(2006, 2),
            2006,
            OsPart::Kernel,
            true,
            &[OsDistribution::Solaris],
        );
        unknown.set_validity(Validity::Unknown);
        let mut disputed = entry(
            CveId::new(2006, 3),
            2006,
            OsPart::Kernel,
            true,
            &[OsDistribution::Solaris],
        );
        disputed.set_validity(Validity::Disputed);
        store.ingest([&valid, &unknown, &disputed]);
        assert_eq!(store.vulnerability_count(), 3);
        assert_eq!(store.valid_count(), 1);
        assert_eq!(store.count_by_validity(Validity::Unknown), 1);
        assert_eq!(store.count_by_validity(Validity::Disputed), 1);
        assert_eq!(store.count_by_validity(Validity::Unspecified), 0);
    }

    #[test]
    fn shared_by_all_and_affecting_any() {
        let mut store = VulnStore::new();
        store.ingest([
            &entry(
                CveId::new(2007, 1),
                2007,
                OsPart::Kernel,
                true,
                &[
                    OsDistribution::OpenBsd,
                    OsDistribution::NetBsd,
                    OsDistribution::FreeBsd,
                ],
            ),
            &entry(
                CveId::new(2007, 2),
                2007,
                OsPart::Kernel,
                true,
                &[OsDistribution::OpenBsd, OsDistribution::NetBsd],
            ),
            &entry(
                CveId::new(2007, 3),
                2007,
                OsPart::Kernel,
                true,
                &[OsDistribution::Debian],
            ),
        ]);
        let pair = OsSet::pair(OsDistribution::OpenBsd, OsDistribution::NetBsd);
        assert_eq!(store.shared_by_all(pair).len(), 2);
        let triple = OsSet::from_iter([
            OsDistribution::OpenBsd,
            OsDistribution::NetBsd,
            OsDistribution::FreeBsd,
        ]);
        assert_eq!(store.shared_by_all(triple).len(), 1);
        assert_eq!(
            store
                .affecting_any(OsSet::singleton(OsDistribution::Debian))
                .len(),
            1
        );
        assert_eq!(store.affecting_any(OsSet::all()).len(), 3);
        assert!(store
            .shared_by_all(OsSet::pair(OsDistribution::Debian, OsDistribution::Ubuntu))
            .is_empty());
    }

    #[test]
    fn release_level_queries() {
        let mut store = VulnStore::new();
        let e = VulnerabilityEntry::builder(CveId::new(2007, 42))
            .published(Date::new(2007, 3, 1).unwrap())
            .summary("release specific flaw")
            .part(OsPart::SystemSoftware)
            .affects_os_version(OsDistribution::Debian, "4.0")
            .affects_os(OsDistribution::RedHat)
            .build()
            .unwrap();
        let id = store.insert_entry(&e);
        assert!(store.affects_release(id, OsDistribution::Debian, "4.0"));
        assert!(!store.affects_release(id, OsDistribution::Debian, "3.0"));
        assert!(store.affects_release(id, OsDistribution::RedHat, "5.0"));
        assert!(!store.affects_release(id, OsDistribution::Ubuntu, "8.04"));
    }

    #[test]
    fn set_part_and_validity_update_rows() {
        let mut store = VulnStore::new();
        let e = VulnerabilityEntry::builder(CveId::new(2009, 9))
            .summary("unclassified flaw")
            .affects_os(OsDistribution::Ubuntu)
            .build()
            .unwrap();
        let id = store.insert_entry(&e);
        assert_eq!(store.get(id).unwrap().part, None);
        store.set_part(id, OsPart::Driver).unwrap();
        assert_eq!(store.get(id).unwrap().part, Some(OsPart::Driver));
        store.set_validity(id, Validity::Unspecified).unwrap();
        assert_eq!(store.valid_count(), 0);
        assert!(store.set_part(VulnId(999), OsPart::Kernel).is_err());
        assert!(store.set_validity(VulnId(999), Validity::Valid).is_err());
    }

    #[test]
    fn missing_cvss_defaults_to_remote() {
        let mut store = VulnStore::new();
        let e = VulnerabilityEntry::builder(CveId::new(2009, 10))
            .affects_os(OsDistribution::Solaris)
            .build()
            .unwrap();
        let id = store.insert_entry(&e);
        assert!(store.cvss_for(id).is_none());
        assert_eq!(store.access_vector_for(id), AccessVector::Network);
    }

    #[test]
    fn from_iterator_builds_a_store() {
        let entries = [
            entry(
                CveId::new(2003, 1),
                2003,
                OsPart::Kernel,
                true,
                &[OsDistribution::FreeBsd],
            ),
            entry(
                CveId::new(2003, 2),
                2003,
                OsPart::Application,
                false,
                &[OsDistribution::RedHat],
            ),
        ];
        let store: VulnStore = entries.iter().collect();
        assert_eq!(store.vulnerability_count(), 2);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arbitrary_os_set() -> impl Strategy<Value = OsSet> {
            (1u16..(1 << 11)).prop_map(OsSet::from_bits)
        }

        proptest! {
            #[test]
            fn os_vuln_rows_match_os_set(sets in proptest::collection::vec(arbitrary_os_set(), 1..30)) {
                let mut store = VulnStore::new();
                for (i, set) in sets.iter().enumerate() {
                    let e = VulnerabilityEntry::builder(CveId::new(2005, i as u32 + 1))
                        .affects_set(*set)
                        .build()
                        .unwrap();
                    let id = store.insert_entry(&e);
                    let row = store.get(id).unwrap();
                    prop_assert_eq!(row.os_set, *set);
                    prop_assert_eq!(store.os_vuln_rows_for(id).len(), set.len());
                }
                // The per-OS index is consistent with the row os_sets.
                for os in OsDistribution::ALL {
                    let indexed = store.vulnerabilities_for_os(os).len();
                    let scanned = store.rows().filter(|r| r.os_set.contains(os)).count();
                    prop_assert_eq!(indexed, scanned);
                }
            }

            #[test]
            fn shared_by_all_is_monotone_in_group_size(
                sets in proptest::collection::vec(arbitrary_os_set(), 1..40),
                group in arbitrary_os_set(),
            ) {
                let mut store = VulnStore::new();
                for (i, set) in sets.iter().enumerate() {
                    let e = VulnerabilityEntry::builder(CveId::new(2006, i as u32 + 1))
                        .affects_set(*set)
                        .build()
                        .unwrap();
                    store.insert_entry(&e);
                }
                // Adding one more OS to the group can only shrink the set of
                // common vulnerabilities.
                let with_all = store.shared_by_all(group).len();
                for os in OsDistribution::ALL {
                    if !group.contains(os) {
                        let mut bigger = group;
                        bigger.insert(os);
                        prop_assert!(store.shared_by_all(bigger).len() <= with_all);
                    }
                }
            }
        }
    }
}
