//! A thread-safe, clone-able handle over a [`VulnStore`].
//!
//! The Monte-Carlo simulator in `bft-sim` evaluates thousands of attack
//! scenarios in parallel; every scenario only *reads* the vulnerability
//! database. [`SharedStore`] wraps the store in an `Arc<RwLock<..>>`
//! (parking_lot's lock, which is cheap for read-mostly workloads) so the
//! same data can be shared across worker threads without copying it.

use std::sync::Arc;

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::VulnStore;

/// A cheaply clone-able, thread-safe handle to a [`VulnStore`].
///
/// # Example
///
/// ```
/// use vulnstore::{SharedStore, VulnStore};
/// use nvd_model::{CveId, OsDistribution, VulnerabilityEntry};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let shared = SharedStore::new(VulnStore::new());
/// let writer = shared.clone();
/// let entry = VulnerabilityEntry::builder(CveId::new(2009, 1))
///     .affects_os(OsDistribution::Debian)
///     .build()?;
/// writer.write().insert_entry(&entry);
/// assert_eq!(shared.read().vulnerability_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct SharedStore {
    inner: Arc<RwLock<VulnStore>>,
}

impl SharedStore {
    /// Wraps a store in a shared handle.
    pub fn new(store: VulnStore) -> Self {
        SharedStore {
            inner: Arc::new(RwLock::new(store)),
        }
    }

    /// Acquires a read lock on the store.
    pub fn read(&self) -> RwLockReadGuard<'_, VulnStore> {
        self.inner.read()
    }

    /// Acquires a write lock on the store.
    pub fn write(&self) -> RwLockWriteGuard<'_, VulnStore> {
        self.inner.write()
    }

    /// Number of live handles to the same store (useful in tests and
    /// diagnostics).
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.inner)
    }

    /// Extracts the store if this is the last handle, otherwise returns the
    /// handle back.
    ///
    /// # Errors
    ///
    /// Returns `Err(self)` when other handles still exist.
    pub fn try_unwrap(self) -> Result<VulnStore, SharedStore> {
        match Arc::try_unwrap(self.inner) {
            Ok(lock) => Ok(lock.into_inner()),
            Err(inner) => Err(SharedStore { inner }),
        }
    }
}

impl From<VulnStore> for SharedStore {
    fn from(store: VulnStore) -> Self {
        SharedStore::new(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvd_model::{CveId, OsDistribution, VulnerabilityEntry};

    fn sample_entry(number: u32) -> VulnerabilityEntry {
        VulnerabilityEntry::builder(CveId::new(2009, number))
            .affects_os(OsDistribution::FreeBsd)
            .build()
            .unwrap()
    }

    #[test]
    fn reads_and_writes_are_visible_across_handles() {
        let shared = SharedStore::new(VulnStore::new());
        let other = shared.clone();
        other.write().insert_entry(&sample_entry(1));
        assert_eq!(shared.read().vulnerability_count(), 1);
        assert_eq!(shared.handle_count(), 2);
    }

    #[test]
    fn parallel_readers_see_a_consistent_store() {
        let shared = SharedStore::new(VulnStore::new());
        {
            let mut store = shared.write();
            for i in 1..=50 {
                store.insert_entry(&sample_entry(i));
            }
        }
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let reader = shared.clone();
                std::thread::spawn(move || reader.read().vulnerability_count())
            })
            .collect();
        for handle in handles {
            assert_eq!(handle.join().unwrap(), 50);
        }
    }

    #[test]
    fn try_unwrap_only_succeeds_for_last_handle() {
        let shared = SharedStore::new(VulnStore::new());
        let clone = shared.clone();
        let still_shared = shared.try_unwrap().unwrap_err();
        drop(clone);
        assert!(still_shared.try_unwrap().is_ok());
    }

    #[test]
    fn from_store_conversion() {
        let shared: SharedStore = VulnStore::new().into();
        assert_eq!(shared.read().vulnerability_count(), 0);
    }
}
