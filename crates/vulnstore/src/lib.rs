//! An embedded, in-memory relational store mirroring the SQL database of the
//! paper (Figure 1).
//!
//! Garcia et al. loaded the parsed NVD feeds into an SQL database with a
//! custom schema so they could (1) enrich the data by hand (vulnerability
//! type, OS release dates, family names), (2) correct naming problems and
//! (3) run the aggregation queries behind every table in the paper. This
//! crate provides the same capability without an external database server:
//!
//! * [`schema`] — typed row structs for the `vulnerability`, `os`,
//!   `os_vuln`, `cvss` and `vulnerability_type` tables of Figure 1;
//! * [`table`] — a small generic table abstraction with primary-key lookup
//!   and secondary indexes;
//! * [`store`] — [`VulnStore`], the facade that ingests
//!   [`nvd_model::VulnerabilityEntry`] values and exposes the relational
//!   queries the analysis crates need (joins between `os_vuln` and
//!   `vulnerability`, filtered counts, grouped aggregations);
//! * [`concurrent`] — [`SharedStore`](concurrent::SharedStore), a cheap
//!   clone-able, thread-safe handle used by the Monte-Carlo simulator.
//!
//! # Example
//!
//! ```
//! use nvd_model::{CveId, OsDistribution, OsPart, VulnerabilityEntry};
//! use vulnstore::VulnStore;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut store = VulnStore::new();
//! let entry = VulnerabilityEntry::builder(CveId::new(2008, 1447))
//!     .summary("DNS cache poisoning")
//!     .part(OsPart::SystemSoftware)
//!     .affects_os(OsDistribution::Debian)
//!     .affects_os(OsDistribution::FreeBsd)
//!     .build()?;
//! store.insert_entry(&entry);
//!
//! assert_eq!(store.vulnerability_count(), 1);
//! assert_eq!(store.vulnerabilities_for_os(OsDistribution::Debian).len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod concurrent;
pub mod error;
pub mod schema;
pub mod snapshot;
pub mod store;
pub mod table;

pub use concurrent::SharedStore;
pub use error::StoreError;
pub use schema::{CvssRow, OsRow, OsVulnRow, VulnId, VulnerabilityRow};
pub use snapshot::{decode_store, encode_store, RowCodecError, STORE_SECTION_VERSION};
pub use store::VulnStore;
pub use table::Table;

/// Convenience result alias used across the crate.
pub type Result<T, E = StoreError> = std::result::Result<T, E>;
