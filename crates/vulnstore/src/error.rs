//! Error type for store operations.

use std::fmt;

use nvd_model::CveId;

/// Error produced by store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An entry with the same CVE identifier is already stored.
    DuplicateVulnerability {
        /// The identifier that was inserted twice.
        id: CveId,
    },
    /// A row referenced by id does not exist.
    NotFound {
        /// Description of what was being looked up.
        what: &'static str,
    },
    /// Decoded tables violate a relational invariant (dangling foreign
    /// key, duplicate unique key, …) — the input cannot come from a
    /// well-formed store.
    Inconsistent {
        /// The violated invariant.
        what: &'static str,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::DuplicateVulnerability { id } => {
                write!(f, "vulnerability {id} is already stored")
            }
            StoreError::NotFound { what } => write!(f, "{what} not found"),
            StoreError::Inconsistent { what } => {
                write!(f, "inconsistent store tables: {what}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_id() {
        let err = StoreError::DuplicateVulnerability {
            id: CveId::new(2008, 1447),
        };
        assert!(err.to_string().contains("CVE-2008-1447"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<StoreError>();
    }
}
