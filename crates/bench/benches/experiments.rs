//! Criterion benches for the paper's experiments (E1–E11): each bench
//! measures the cost of regenerating one table or figure from the calibrated
//! dataset, plus the cost of the ingestion and classification pipeline that
//! feeds them.

use bft_sim::{ReplicaSet, SimulationConfig, Simulator};
use classify::Classifier;
use criterion::{criterion_group, criterion_main, Criterion};
use datagen::CalibratedGenerator;
use nvd_model::OsDistribution;
use osdiv_core::{
    ClassDistribution, KWayAnalysis, KWayConfig, PairwiseAnalysis, ReleaseAnalysis,
    ReplicaSelection, ServerProfile, SplitMatrix, Study, StudyDataset, TemporalAnalysis,
    ValidityDistribution,
};

fn calibrated_study() -> Study {
    let dataset = CalibratedGenerator::new(2011).generate();
    Study::from_entries(dataset.entries())
}

fn bench_pipeline(c: &mut Criterion) {
    let dataset = CalibratedGenerator::new(2011).generate();
    c.bench_function("pipeline/generate_calibrated_dataset", |b| {
        b.iter(|| CalibratedGenerator::new(2011).generate())
    });
    c.bench_function("pipeline/ingest_into_store", |b| {
        b.iter(|| StudyDataset::from_entries(dataset.entries()))
    });
    c.bench_function("pipeline/classify_all_summaries", |b| {
        let classifier = Classifier::with_default_rules();
        b.iter(|| {
            dataset
                .entries()
                .iter()
                .filter(|entry| {
                    classifier.classify_summary(entry.summary()) == nvd_model::OsPart::Kernel
                })
                .count()
        })
    });
    c.bench_function("pipeline/feed_write_and_parse", |b| {
        let entries: Vec<_> = dataset.entries().to_vec();
        b.iter(|| {
            let xml = nvd_feed::FeedWriter::new()
                .write_to_string(&entries)
                .unwrap();
            nvd_feed::FeedReader::new()
                .read_from_str(&xml)
                .unwrap()
                .len()
        })
    });
}

fn bench_tables(c: &mut Criterion) {
    let study = calibrated_study();
    c.bench_function("table1/validity_distribution", |b| {
        b.iter(|| study.get_with::<ValidityDistribution>(&()).unwrap())
    });
    c.bench_function("table2/class_distribution", |b| {
        b.iter(|| study.get_with::<ClassDistribution>(&()).unwrap())
    });
    c.bench_function("table3_table4/pairwise_analysis", |b| {
        b.iter(|| {
            study
                .get_with::<PairwiseAnalysis>(&Default::default())
                .unwrap()
        })
    });
    c.bench_function("table5/history_observed_split", |b| {
        b.iter(|| study.get_with::<SplitMatrix>(&Default::default()).unwrap())
    });
    c.bench_function("table6/release_analysis", |b| {
        b.iter(|| {
            study
                .get_with::<ReleaseAnalysis>(&Default::default())
                .unwrap()
        })
    });
}

fn bench_figures(c: &mut Criterion) {
    let study = calibrated_study();
    c.bench_function("figure2/temporal_analysis", |b| {
        b.iter(|| {
            study
                .get_with::<TemporalAnalysis>(&Default::default())
                .unwrap()
        })
    });
    c.bench_function("figure3/replica_selection", |b| {
        let selection = ReplicaSelection::new(&study);
        b.iter(|| selection.figure3())
    });
    c.bench_function("figure3/best_four_os_groups", |b| {
        let selection = ReplicaSelection::new(&study);
        b.iter(|| selection.best_groups(4, 3))
    });
    c.bench_function("section4b/kway_analysis", |b| {
        b.iter(|| {
            study
                .get_with::<KWayAnalysis>(&KWayConfig {
                    profile: ServerProfile::FatServer,
                    max_k: 9,
                })
                .unwrap()
        })
    });
}

fn bench_simulation(c: &mut Criterion) {
    let study = calibrated_study();
    let simulator = Simulator::new(
        &study,
        SimulationConfig::default().with_trials(100).with_threads(4),
    );
    let homogeneous = ReplicaSet::homogeneous(OsDistribution::Debian, 4);
    let diverse = ReplicaSet::new(vec![
        OsDistribution::Windows2003,
        OsDistribution::Solaris,
        OsDistribution::Debian,
        OsDistribution::OpenBsd,
    ]);
    c.bench_function("survival/homogeneous_debian_x4", |b| {
        b.iter(|| simulator.run(&homogeneous))
    });
    c.bench_function("survival/diverse_set1", |b| {
        b.iter(|| simulator.run(&diverse))
    });
}

criterion_group!(
    name = experiments;
    config = Criterion::default().sample_size(20);
    targets = bench_pipeline, bench_tables, bench_figures, bench_simulation
);
criterion_main!(experiments);
