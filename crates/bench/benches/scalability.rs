//! Scalability benches: how the analysis cost grows with the dataset size
//! and with the intra-family reuse probability, using the parametric
//! generator (an ablation over the design choices documented in DESIGN.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{ParametricConfig, ParametricGenerator};
use osdiv_core::{KWayAnalysis, KWayConfig, PairwiseAnalysis, ServerProfile, Study, StudyDataset};

fn bench_dataset_size_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalability/pairwise_vs_dataset_size");
    for size in [500usize, 2_000, 8_000] {
        let dataset = ParametricGenerator::new(ParametricConfig::with_count(size)).generate();
        let study = Study::from_entries(dataset.entries());
        group.bench_with_input(BenchmarkId::from_parameter(size), &study, |b, study| {
            b.iter(|| {
                study
                    .get_with::<PairwiseAnalysis>(&Default::default())
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_reuse_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalability/kway_vs_family_reuse");
    for reuse in [0.05f64, 0.25, 0.60] {
        let config = ParametricConfig {
            vulnerability_count: 2_000,
            family_reuse_probability: reuse,
            ..ParametricConfig::default()
        };
        let dataset = ParametricGenerator::new(config).generate();
        let study = Study::from_entries(dataset.entries());
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("reuse={reuse}")),
            &study,
            |b, study| {
                b.iter(|| {
                    study
                        .get_with::<KWayAnalysis>(&KWayConfig {
                            profile: ServerProfile::FatServer,
                            max_k: 6,
                        })
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_ingestion_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalability/ingest_vs_dataset_size");
    for size in [1_000usize, 4_000, 16_000] {
        let dataset = ParametricGenerator::new(ParametricConfig::with_count(size)).generate();
        group.bench_with_input(BenchmarkId::from_parameter(size), &dataset, |b, dataset| {
            b.iter(|| StudyDataset::from_entries(dataset.entries()))
        });
    }
    group.finish();
}

criterion_group!(
    name = scalability;
    config = Criterion::default().sample_size(10);
    targets = bench_dataset_size_sweep, bench_reuse_sweep, bench_ingestion_sweep
);
criterion_main!(scalability);
