//! Session benches: the cost of warming a full `Study` cache sequentially
//! (one analysis after another) vs in parallel (`Study::run_all` fanning the
//! registry out across scoped threads), the marginal cost of a memoized
//! lookup, and the zeta-transform `CountIndex`: its one-time build cost and
//! the k-way analysis running against it vs against naive full-store scans
//! (the pre-index implementation, preserved below as the baseline). The
//! measured numbers are recorded per PR in CHANGES.md.

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::CalibratedGenerator;
use nvd_model::{OsDistribution, OsSet};
use osdiv_core::{
    registry, CountIndex, Format, KWayAnalysis, KWayConfig, PairwiseAnalysis, Period,
    ServerProfile, Study, StudyDataset,
};

fn calibrated_dataset() -> StudyDataset {
    let dataset = CalibratedGenerator::new(2011).generate();
    StudyDataset::from_entries(dataset.entries())
}

fn bench_full_report(c: &mut Criterion) {
    let dataset = calibrated_dataset();
    c.bench_function("study/full_report_sequential", |b| {
        b.iter(|| {
            let study = Study::new(dataset.clone());
            for entry in registry() {
                (entry.prime)(&study).unwrap();
            }
            study.report(Format::Text).unwrap()
        })
    });
    c.bench_function("study/full_report_parallel_run_all", |b| {
        b.iter(|| {
            let study = Study::new(dataset.clone());
            study.run_all().unwrap();
            study.report(Format::Text).unwrap()
        })
    });
}

fn bench_memoized_lookup(c: &mut Criterion) {
    let dataset = calibrated_dataset();
    let study = Study::new(dataset);
    study.run_all().unwrap();
    c.bench_function("study/memoized_get_pairwise", |b| {
        b.iter(|| study.get::<PairwiseAnalysis>().unwrap())
    });
}

/// The pre-index k-way analysis: every count is a full scan of the store
/// (the PR 2 implementation, kept here as the comparison baseline).
fn naive_kway(study: &StudyDataset, profile: ServerProfile, max_k: usize) -> usize {
    let universe = OsSet::all();
    let mut checksum = 0usize;
    for k in 2..=max_k {
        checksum += study
            .store()
            .rows()
            .filter(|row| study.retains(row, profile) && row.os_set.len() >= k)
            .count();
        if k <= OsDistribution::COUNT {
            for group in universe.subsets_of_size(k) {
                checksum += study
                    .store()
                    .rows()
                    .filter(|row| {
                        study.retains(row, profile)
                            && Period::Whole.contains(row.year())
                            && group.is_subset_of(&row.os_set)
                    })
                    .count();
            }
        }
    }
    checksum
}

fn bench_count_index(c: &mut Criterion) {
    let dataset = calibrated_dataset();

    // One-time build cost of the zeta-transform index (histogram pass +
    // per-year-layer transforms for all three profiles).
    c.bench_function("study/count_index_build", |b| {
        b.iter(|| CountIndex::build(&dataset))
    });

    // The Section IV-B enumeration against the warm index vs against naive
    // full-store scans — the acceptance datapoint of the index PR.
    let study = Study::new(dataset.clone());
    study.dataset().count_index(); // warm
    let config = KWayConfig::default();
    c.bench_function("study/kway_indexed", |b| {
        b.iter(|| study.get_with::<KWayAnalysis>(&config).unwrap())
    });
    c.bench_function("study/kway_naive", |b| {
        b.iter(|| naive_kway(study.dataset(), config.profile, config.max_k))
    });
}

criterion_group!(
    name = study;
    config = Criterion::default().sample_size(10);
    targets = bench_full_report, bench_memoized_lookup, bench_count_index
);
criterion_main!(study);
