//! Session benches: the cost of warming a full `Study` cache sequentially
//! (one analysis after another) vs in parallel (`Study::run_all` fanning the
//! registry out across scoped threads), plus the marginal cost of a memoized
//! lookup. The measured numbers are recorded per PR in CHANGES.md.

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::CalibratedGenerator;
use osdiv_core::{registry, Format, PairwiseAnalysis, Study, StudyDataset};

fn calibrated_dataset() -> StudyDataset {
    let dataset = CalibratedGenerator::new(2011).generate();
    StudyDataset::from_entries(dataset.entries())
}

fn bench_full_report(c: &mut Criterion) {
    let dataset = calibrated_dataset();
    c.bench_function("study/full_report_sequential", |b| {
        b.iter(|| {
            let study = Study::new(dataset.clone());
            for entry in registry() {
                (entry.prime)(&study).unwrap();
            }
            study.report(Format::Text).unwrap()
        })
    });
    c.bench_function("study/full_report_parallel_run_all", |b| {
        b.iter(|| {
            let study = Study::new(dataset.clone());
            study.run_all().unwrap();
            study.report(Format::Text).unwrap()
        })
    });
}

fn bench_memoized_lookup(c: &mut Criterion) {
    let dataset = calibrated_dataset();
    let study = Study::new(dataset);
    study.run_all().unwrap();
    c.bench_function("study/memoized_get_pairwise", |b| {
        b.iter(|| study.get::<PairwiseAnalysis>().unwrap())
    });
}

criterion_group!(
    name = study;
    config = Criterion::default().sample_size(10);
    targets = bench_full_report, bench_memoized_lookup
);
criterion_main!(study);
