//! Persistence benches: serializing the calibrated dataset into the
//! `OSDV` container, decoding it back (with the pre-built count index and
//! with a forced lazy rebuild), and the registry-level spill → reload
//! round trip through a `TenantStore` on disk. The measured numbers are
//! recorded per PR in CHANGES.md.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::CalibratedGenerator;
use osdiv_core::{Snapshot, Study, StudyDataset};
use osdiv_registry::{DatasetSource, TenantStore};

fn calibrated_dataset() -> StudyDataset {
    let dataset = CalibratedGenerator::new(2011).generate();
    StudyDataset::from_entries(dataset.entries())
}

fn bench_snapshot_codec(c: &mut Criterion) {
    let dataset = calibrated_dataset();
    // Pre-build the count index so the write bench measures encoding, not
    // the one-time index construction (benched separately in `study`).
    dataset.count_index();
    c.bench_function("snapshot/to_bytes", |b| {
        b.iter(|| Snapshot::to_bytes(&dataset, &[]))
    });

    let bytes = Snapshot::to_bytes(&dataset, &[]);
    c.bench_function("snapshot/from_bytes_with_index", |b| {
        b.iter(|| Snapshot::from_bytes(&bytes).unwrap())
    });

    // Drop the INDEX section by marking it an unknown version: the reader
    // takes the compatibility path and rebuilds the index on first use.
    let mut without_index = bytes.clone();
    without_index[8 + 24 + 2..8 + 24 + 4].copy_from_slice(&99u16.to_le_bytes());
    c.bench_function("snapshot/from_bytes_rebuilding_index", |b| {
        b.iter(|| {
            let snapshot = Snapshot::from_bytes(&without_index).unwrap();
            assert!(!snapshot.index_loaded);
            snapshot.dataset.count_index();
            snapshot
        })
    });
}

fn bench_tenant_store(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("osdiv-bench-snapshot-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = TenantStore::open(&dir).unwrap();
    let study = Arc::new(Study::new(calibrated_dataset()));
    let source = DatasetSource::Synthetic { seed: 2011 };

    c.bench_function("snapshot/tenant_store_save", |b| {
        b.iter(|| store.save("bench", &study, &source).unwrap())
    });
    c.bench_function("snapshot/tenant_store_load", |b| {
        b.iter(|| store.load("bench").unwrap())
    });
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_snapshot_codec, bench_tenant_store);
criterion_main!(benches);
