//! Serving-layer benches: the latency of one cached request over a real
//! socket, ETag revalidation, and a multi-client loadgen throughput number
//! (requests/sec) for `/v1/report` served from the memoized `Study` — the
//! serving datapoint of the perf trajectory in CHANGES.md.
//!
//! The roundtrip benches run with observability fully on (per-route and
//! per-stage histograms, request-id minting), so their numbers *are* the
//! with-instrumentation figures; `obs/histogram_record` isolates the cost
//! of one histogram sample to show why the overhead stays in the noise.
//! The open-loop leg prints coordinated-omission-immune p50/p99/p999.

use std::io::BufReader;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::CalibratedGenerator;
use osdiv_core::{obs, FlightRecorder, LatencyHistogram, SpanKind, Study};
use osdiv_serve::loadgen::{read_response, run_loadgen, run_open_loop, write_request};
use osdiv_serve::{OpenLoopConfig, Router, RouterOptions, Server, ServerHandle, ServerOptions};

fn start_server() -> ServerHandle {
    let dataset = CalibratedGenerator::new(2011).generate();
    let study = Study::from_entries(dataset.entries());
    study.run_all().expect("default configurations are valid");
    let router = Arc::new(Router::with_study(
        Arc::new(study),
        RouterOptions::default(),
    ));
    let server = Server::bind(
        "127.0.0.1:0",
        router,
        ServerOptions {
            threads: 4,
            read_timeout: Duration::from_secs(10),
            // The latency benches pump far more than the production
            // default of 1000 requests through one connection.
            max_keep_alive_requests: usize::MAX,
            ..ServerOptions::default()
        },
    )
    .expect("an ephemeral loop-back port is bindable");
    server.spawn()
}

fn bench_histogram_record(c: &mut Criterion) {
    // The cost every request pays per recorded sample: two relaxed
    // fetch_adds on a log-bucketed atomic array. Sub-10ns keeps the
    // always-on route+stage instrumentation inside the roundtrip noise.
    let histogram = LatencyHistogram::new();
    let mut sample = 17u64;
    c.bench_function("obs/histogram_record", |b| {
        b.iter(|| {
            sample = sample
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493)
                % 60_000;
            histogram.record_us(sample);
            histogram.total()
        })
    });
}

fn bench_flight_record(c: &mut Criterion) {
    // The A/B against obs/histogram_record (~26 ns/sample): one span
    // written into the flight-recorder ring is one fetch_add claim plus
    // a try_lock'd 80-byte slot store — it must stay in the same order
    // of magnitude, or per-request span recording would show up in the
    // roundtrip numbers.
    let recorder = FlightRecorder::global();
    let mut sample = 17u64;
    c.bench_function("obs/flight_record", |b| {
        b.iter(|| {
            sample = sample
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493)
                % 60_000;
            obs::record_span(SpanKind::Render, "bench", sample, sample);
            recorder.recorded_total()
        })
    });
}

fn bench_serving(c: &mut Criterion) {
    let handle = start_server();
    let addr = handle.addr();

    // Single keep-alive request against the rendered-body cache.
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream);
    c.bench_function("serve/cached_report_json_roundtrip", |b| {
        b.iter(|| {
            write_request(reader.get_mut(), "GET", "/v1/report?format=json", &[]).unwrap();
            read_response(&mut reader).unwrap().status
        })
    });

    // ETag revalidation: the 304 path renders and transfers nothing.
    write_request(reader.get_mut(), "GET", "/v1/report?format=json", &[]).unwrap();
    let etag = read_response(&mut reader)
        .unwrap()
        .header("etag")
        .expect("the report carries an ETag")
        .to_string();
    c.bench_function("serve/etag_revalidation_304", |b| {
        b.iter(|| {
            write_request(
                reader.get_mut(),
                "GET",
                "/v1/report?format=json",
                &[("If-None-Match", &etag)],
            )
            .unwrap();
            read_response(&mut reader).unwrap().status
        })
    });

    // A non-default configuration served through the LRU cache.
    c.bench_function("serve/cached_parameterized_kway_csv", |b| {
        b.iter(|| {
            write_request(
                reader.get_mut(),
                "GET",
                "/v1/analyses/kway?profile=isolated&max_k=4&format=csv",
                &[],
            )
            .unwrap();
            read_response(&mut reader).unwrap().status
        })
    });
    drop(reader);

    // Multi-client throughput: the requests/sec figure of the suite.
    for clients in [1, 4, 8] {
        let report = run_loadgen(addr, clients, 500, "/v1/report?format=json");
        println!(
            "serve/loadgen_report_json/{clients}_clients: {:.0} req/s \
             ({} ok, {} errors, {:.2?} elapsed)",
            report.requests_per_sec(),
            report.ok,
            report.errors,
            report.elapsed,
        );
        assert_eq!(report.errors, 0, "loadgen must not drop requests");
    }

    // Open-loop tail latency: arrivals fire on a Poisson schedule whether
    // or not earlier responses came back, so the p99/p999 include any
    // queueing delay the server causes (no coordinated omission).
    let open = run_open_loop(
        addr,
        &OpenLoopConfig {
            rate_per_sec: 2_000.0,
            duration: Duration::from_secs(2),
            ..OpenLoopConfig::default()
        },
    );
    println!("serve/open_loop_report_json: {}", open.summary());
    assert_eq!(open.errors, 0, "the open-loop run must not drop requests");

    handle
        .shutdown()
        .expect("the bench server shuts down cleanly");
}

criterion_group!(
    name = serve;
    config = Criterion::default().sample_size(10);
    targets = bench_histogram_record, bench_flight_record, bench_serving
);
criterion_main!(serve);
