//! Serving-layer benches: the latency of one cached request over a real
//! socket, ETag revalidation, and a multi-client loadgen throughput number
//! (requests/sec) for `/v1/report` served from the memoized `Study` — the
//! serving datapoint of the perf trajectory in CHANGES.md.

use std::io::BufReader;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::CalibratedGenerator;
use osdiv_core::Study;
use osdiv_serve::loadgen::{read_response, run_loadgen, write_request};
use osdiv_serve::{Router, RouterOptions, Server, ServerHandle, ServerOptions};

fn start_server() -> ServerHandle {
    let dataset = CalibratedGenerator::new(2011).generate();
    let study = Study::from_entries(dataset.entries());
    study.run_all().expect("default configurations are valid");
    let router = Arc::new(Router::with_study(
        Arc::new(study),
        RouterOptions::default(),
    ));
    let server = Server::bind(
        "127.0.0.1:0",
        router,
        ServerOptions {
            threads: 4,
            read_timeout: Duration::from_secs(10),
            // The latency benches pump far more than the production
            // default of 1000 requests through one connection.
            max_keep_alive_requests: usize::MAX,
        },
    )
    .expect("an ephemeral loop-back port is bindable");
    server.spawn()
}

fn bench_serving(c: &mut Criterion) {
    let handle = start_server();
    let addr = handle.addr();

    // Single keep-alive request against the rendered-body cache.
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream);
    c.bench_function("serve/cached_report_json_roundtrip", |b| {
        b.iter(|| {
            write_request(reader.get_mut(), "GET", "/v1/report?format=json", &[]).unwrap();
            read_response(&mut reader).unwrap().status
        })
    });

    // ETag revalidation: the 304 path renders and transfers nothing.
    write_request(reader.get_mut(), "GET", "/v1/report?format=json", &[]).unwrap();
    let etag = read_response(&mut reader)
        .unwrap()
        .header("etag")
        .expect("the report carries an ETag")
        .to_string();
    c.bench_function("serve/etag_revalidation_304", |b| {
        b.iter(|| {
            write_request(
                reader.get_mut(),
                "GET",
                "/v1/report?format=json",
                &[("If-None-Match", &etag)],
            )
            .unwrap();
            read_response(&mut reader).unwrap().status
        })
    });

    // A non-default configuration served through the LRU cache.
    c.bench_function("serve/cached_parameterized_kway_csv", |b| {
        b.iter(|| {
            write_request(
                reader.get_mut(),
                "GET",
                "/v1/analyses/kway?profile=isolated&max_k=4&format=csv",
                &[],
            )
            .unwrap();
            read_response(&mut reader).unwrap().status
        })
    });
    drop(reader);

    // Multi-client throughput: the requests/sec figure of the suite.
    for clients in [1, 4, 8] {
        let report = run_loadgen(addr, clients, 500, "/v1/report?format=json");
        println!(
            "serve/loadgen_report_json/{clients}_clients: {:.0} req/s \
             ({} ok, {} errors, {:.2?} elapsed)",
            report.requests_per_sec(),
            report.ok,
            report.errors,
            report.elapsed,
        );
        assert_eq!(report.errors, 0, "loadgen must not drop requests");
    }

    handle
        .shutdown()
        .expect("the bench server shuts down cleanly");
}

criterion_group!(
    name = serve;
    config = Criterion::default().sample_size(10);
    targets = bench_serving
);
criterion_main!(serve);
