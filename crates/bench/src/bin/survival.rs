//! Experiment E10 (extension): intrusion-tolerance survival of diverse vs
//! homogeneous replica configurations, driven by the vulnerability dataset.

use bft_sim::{ReplicaSet, SimulationConfig, Simulator};
use nvd_model::OsDistribution;
use osdiv_bench::harness::{calibrated_study, print_header};
use osdiv_core::figure3_configurations;
use tabular::TextTable;

fn main() {
    let study = calibrated_study();
    let config = SimulationConfig::default().with_trials(400).with_seed(7);
    let simulator = Simulator::new(&study, config);

    let mut configurations = vec![ReplicaSet::homogeneous(OsDistribution::Debian, 4)];
    for (_, oses) in figure3_configurations() {
        configurations.push(ReplicaSet::diverse(oses));
    }

    print_header("Survival of replica configurations over 2006-2010 (Monte-Carlo)");
    let mut table = TextTable::new([
        "Configuration",
        "P(system compromised)",
        "Mean time to failure (days)",
        "Mean peak compromised replicas",
    ]);
    for set in &configurations {
        let outcome = simulator.run(set);
        table.push_row([
            outcome.label().to_string(),
            format!("{:.2}", outcome.failure_probability()),
            outcome
                .mean_time_to_failure_days()
                .map(|d| format!("{d:.0}"))
                .unwrap_or_else(|| "never failed".to_string()),
            format!("{:.2}", outcome.mean_peak_compromised()),
        ]);
    }
    print!("{}", table.render());
}
