//! Experiment E8: regenerates Figure 3 (replica configurations selected from
//! the history period, validated on the observed period).

use osdiv_bench::harness::{calibrated_study, print_header};
use osdiv_core::{report, ReplicaSelection};

fn main() {
    let study = calibrated_study();
    let selection = ReplicaSelection::new(&study);
    print_header("Figure 3: replica configurations (history vs observed common vulnerabilities)");
    print!("{}", report::figure3(&selection.figure3()).render());
    println!();
    print_header("Best four-OS groups ranked from history data");
    for (group, score) in selection.best_groups(4, 5) {
        println!("{group}  history score = {score}");
    }
}
