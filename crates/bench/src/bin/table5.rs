//! Experiment E7: regenerates Table V (history vs observed period common
//! vulnerabilities for Isolated Thin Servers).

use osdiv_bench::harness::{calibrated_study, print_header};
use osdiv_core::{report, SplitMatrix};

fn main() {
    let study = calibrated_study();
    let matrix = SplitMatrix::compute(&study);
    print_header("Table V: history (above diagonal) vs observed (below) common vulnerabilities");
    print!("{}", report::table5(&matrix).render());
}
