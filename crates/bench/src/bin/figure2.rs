//! Experiment E3: regenerates Figure 2 (temporal distribution of
//! vulnerability publications per OS family) as CSV series.

use nvd_model::OsFamily;
use osdiv_bench::harness::{calibrated_study, print_header};
use osdiv_core::{report, TemporalAnalysis};

fn main() {
    let study = calibrated_study();
    let temporal = TemporalAnalysis::compute(&study);
    for family in OsFamily::ALL {
        print_header(&format!(
            "Figure 2: {family} family (vulnerabilities per year)"
        ));
        print!("{}", report::figure2(&temporal, family).to_csv());
        println!();
    }
}
