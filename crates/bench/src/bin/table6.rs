//! Experiment E9: regenerates Table VI (common vulnerabilities between OS
//! releases of Debian and RedHat).

use osdiv_bench::harness::{calibrated_study, print_header};
use osdiv_core::{report, ReleaseAnalysis};

fn main() {
    let study = calibrated_study();
    let analysis = ReleaseAnalysis::compute(&study);
    print_header("Table VI: common vulnerabilities between OS releases");
    print!("{}", report::table6(&analysis).render());
    println!(
        "{} of {} release pairs share no vulnerability at all",
        analysis.disjoint_pairs(),
        analysis.rows().len()
    );
}
