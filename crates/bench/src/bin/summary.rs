//! Experiment E11: the Section IV-E summary findings.

use osdiv_bench::harness::{calibrated_study, print_header};
use osdiv_core::{report, PairwiseAnalysis};

fn main() {
    let study = calibrated_study();
    let analysis = PairwiseAnalysis::compute(&study);
    print_header("Section IV-E: summary of the findings");
    print!("{}", report::summary_table(&study, &analysis).render());
}
