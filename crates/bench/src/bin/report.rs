//! Prints the full multi-section report (every table and figure) in one go.
//! Used to populate EXPERIMENTS.md.

use osdiv_bench::harness::calibrated_study;
use osdiv_core::report;

fn main() {
    let study = calibrated_study();
    print!("{}", report::full_report(&study));
}
