//! Experiment E4: regenerates Table III (common vulnerabilities for every OS
//! pair under the Fat Server / Thin Server / Isolated Thin Server filters).

use osdiv_bench::harness::{calibrated_study, print_header};
use osdiv_core::{report, PairwiseAnalysis};

fn main() {
    let study = calibrated_study();
    let analysis = PairwiseAnalysis::compute(&study);
    print_header("Table III: pairwise common vulnerabilities (1994 - Sept. 2010)");
    print!("{}", report::table3(&analysis).render());
}
