//! Experiment E6: k-OS combination analysis (Section IV-B).

use osdiv_bench::harness::{calibrated_study, print_header};
use osdiv_core::{report, KWayAnalysis, ServerProfile};

fn main() {
    let study = calibrated_study();
    for profile in [ServerProfile::FatServer, ServerProfile::IsolatedThinServer] {
        let analysis = KWayAnalysis::compute(&study, profile, 9);
        print_header(&format!("k-OS combinations ({profile})"));
        print!("{}", report::kway_table(&analysis).render());
        println!();
    }
}
