//! The `osdiv` CLI: one dispatcher for every table, figure and simulation
//! of the study, replacing the twelve single-purpose experiment binaries.
//!
//! ```text
//! osdiv <command> [--format text|csv|json] [--seed N] [--profile fat|thin|isolated]
//!                 [--first-year Y] [--last-year Y] [--trials N]
//! ```
//!
//! The default invocation of each table/figure command reproduces the
//! corresponding historical binary byte for byte (text format, seed 2011);
//! `--format csv` and `--format json` export the same deliverables through
//! the [`osdiv_core::render`] sinks. Every **registry analysis id**
//! (`validity`, `pairwise`, `kway`, …) is also a command, rendered through
//! [`osdiv_core::analysis_sections`] — byte-identical to what
//! `osdiv serve` answers at `GET /v1/analyses/{id}`. `osdiv list` prints
//! the registry, so newly registered analyses appear in `report`, the help
//! text and the HTTP API without touching the dispatcher.

use std::io::{Read as _, Write as _};
use std::str::FromStr;
use std::sync::Arc;

use bft_sim::{ReplicaSet, SimulationConfig, Simulator};
use nvd_model::{OsDistribution, OsFamily};
use osdiv_bench::harness::{study_session_with_seed, EXPERIMENT_SEED};
use osdiv_core::{
    analysis_sections, figure3_configurations, renderer, AnalysisError, AnalysisId, Format, Params,
    ReleaseAnalysis, ReleaseConfig, Render, Section, SelectionAnalysis, SelectionConfig,
    ServerProfile, Snapshot, SplitConfig, SplitMatrix, Study, TemporalAnalysis, TemporalConfig,
    TextRenderer,
};
use osdiv_registry::persist::source_meta;
use osdiv_registry::{
    DatasetSource, FeedIngester, IngestBudget, IngestOutcome, RegistryOptions, StudyRegistry,
    TenantStore,
};
use osdiv_serve::{Router, RouterOptions, Server, ServerOptions};
use tabular::TextTable;

/// The dispatcher's command table: `(name, summary)`. The per-analysis
/// registry behind `report` and `list` lives in `osdiv_core::registry`.
const COMMANDS: &[(&str, &str)] = &[
    (
        "table1",
        "Table I: distribution of OS vulnerabilities by validity",
    ),
    ("table2", "Table II: vulnerabilities per OS component class"),
    ("table3", "Table III: pairwise common vulnerabilities"),
    (
        "table4",
        "Table IV: isolated thin server per-class breakdown",
    ),
    (
        "table5",
        "Table V: history vs observed common vulnerabilities",
    ),
    (
        "table6",
        "Table VI: common vulnerabilities between OS releases",
    ),
    ("figure2", "Figure 2: per-family temporal series"),
    (
        "figure3",
        "Figure 3: replica selection validated on the observed period",
    ),
    ("summary", "Section IV-E: summary of the findings"),
    ("survival", "Monte-Carlo survival of replica configurations"),
    ("report", "every table and figure in one document"),
    (
        "serve",
        "serve the study as an HTTP API (see --addr/--threads)",
    ),
    (
        "ingest",
        "stream NVD XML feed files into a dataset summary (see --name)",
    ),
    (
        "snapshot",
        "save, load or inspect .osdv tenant snapshots (see --out)",
    ),
    (
        "debug",
        "offline introspection: trace a boot or list tenants (see --data-dir)",
    ),
    ("list", "print the analysis registry"),
    ("help", "show this help"),
];

#[derive(Debug, Clone)]
struct Options {
    format: Format,
    seed: u64,
    profile: Option<ServerProfile>,
    first_year: Option<u16>,
    last_year: Option<u16>,
    trials: usize,
    oses: Option<String>,
    max_k: Option<usize>,
    addr: String,
    threads: usize,
    enable_shutdown: bool,
    enable_dataset_delete: bool,
    enable_debug: bool,
    ingest_token: Option<String>,
    max_datasets: usize,
    max_dataset_bytes: usize,
    name: Option<String>,
    out: Option<String>,
    data_dir: Option<String>,
    no_persist: bool,
    durability: osdiv_registry::Durability,
    io_timeout_ms: Option<u64>,
    shed_queue_depth: Option<usize>,
    access_log: Option<String>,
    slow_request_ms: Option<u64>,
    files: Vec<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            format: Format::Text,
            seed: EXPERIMENT_SEED,
            profile: None,
            first_year: None,
            last_year: None,
            trials: 400,
            oses: None,
            max_k: None,
            addr: "127.0.0.1:8080".to_string(),
            threads: osdiv_serve::default_threads(),
            enable_shutdown: false,
            enable_dataset_delete: false,
            enable_debug: false,
            ingest_token: None,
            max_datasets: osdiv_registry::registry::DEFAULT_MAX_DATASETS,
            max_dataset_bytes: osdiv_registry::registry::DEFAULT_MAX_TOTAL_BYTES,
            name: None,
            out: None,
            data_dir: None,
            no_persist: false,
            durability: osdiv_registry::Durability::default(),
            io_timeout_ms: None,
            shed_queue_depth: None,
            access_log: None,
            slow_request_ms: None,
            files: Vec::new(),
        }
    }
}

impl Options {
    /// The analysis parameter list of the generic `osdiv <analysis>`
    /// commands — the exact key/value pairs a `GET /v1/analyses/{id}`
    /// query string would carry, so both paths render identical bytes.
    fn params(&self) -> Params {
        let mut params = Params::new();
        if let Some(profile) = self.profile {
            params.insert(
                "profile",
                match profile {
                    ServerProfile::FatServer => "fat",
                    ServerProfile::ThinServer => "thin",
                    ServerProfile::IsolatedThinServer => "isolated",
                },
            );
        }
        if let Some(first_year) = self.first_year {
            params.insert("first_year", first_year.to_string());
        }
        if let Some(last_year) = self.last_year {
            params.insert("last_year", last_year.to_string());
        }
        if let Some(oses) = &self.oses {
            params.insert("oses", oses.clone());
        }
        if let Some(max_k) = self.max_k {
            params.insert("max_k", max_k.to_string());
        }
        params
    }
}

enum CliError {
    /// Bad invocation: message goes to stderr, exit code 2.
    Usage(String),
    /// A (configuration) error from the analysis layer: exit code 1.
    Analysis(AnalysisError),
    /// An I/O error from the serving layer: exit code 1.
    Io(std::io::Error),
}

impl From<AnalysisError> for CliError {
    fn from(error: AnalysisError) -> Self {
        CliError::Analysis(error)
    }
}

impl From<std::io::Error> for CliError {
    fn from(error: std::io::Error) -> Self {
        CliError::Io(error)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => print!("{output}"),
        Err(CliError::Usage(message)) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
        Err(CliError::Analysis(error)) => {
            eprintln!("error: {error}");
            std::process::exit(1);
        }
        Err(CliError::Io(error)) => {
            eprintln!("error: {error}");
            std::process::exit(1);
        }
    }
}

fn run(args: &[String]) -> Result<String, CliError> {
    let Some(command) = args.first() else {
        return Err(CliError::Usage(usage()));
    };
    if command == "help" || command == "--help" || command == "-h" {
        return Ok(usage());
    }
    let is_analysis = AnalysisId::from_name(command).is_ok();
    if !is_analysis && !COMMANDS.iter().any(|(name, _)| name == command) {
        return Err(CliError::Usage(format!(
            "unknown command {command:?}\n\n{}",
            usage()
        )));
    }
    if command == "snapshot" {
        return snapshot_command(&args[1..]);
    }
    if command == "debug" {
        return debug_command(&args[1..]);
    }
    let opts = parse_options(&args[1..])?;
    if command == "list" {
        return Ok(list_analyses(opts.format));
    }
    if command == "ingest" {
        return ingest(&opts);
    }
    if !opts.files.is_empty() {
        return Err(CliError::Usage(format!(
            "{command} takes no file arguments\n\n{}",
            usage()
        )));
    }
    let study = study_session_with_seed(opts.seed);
    if command == "serve" {
        return serve(study, &opts);
    }
    if is_analysis {
        // The generic registry path: `osdiv <analysis>` renders the same
        // sections as `GET /v1/analyses/{id}`, byte for byte.
        let id = AnalysisId::from_name(command)?;
        let sections = analysis_sections(&study, id, &opts.params())?;
        return Ok(renderer(opts.format).document(&sections));
    }
    dispatch(command, &study, &opts).map_err(CliError::from)
}

/// `osdiv ingest <file>...`: stream NVD XML feed files through the
/// bounded feed ingester (64 KiB reads — the same no-full-buffering path
/// the server's PUT route uses) and print a dataset summary.
fn ingest(opts: &Options) -> Result<String, CliError> {
    let name = opts.name.clone().unwrap_or_else(|| "ingested".to_string());
    let outcome = ingest_files(opts, "ingest")?;
    let (feed_bytes, entries, parsed, skipped) = (
        outcome.feed_bytes,
        outcome.entries,
        outcome.parsed,
        outcome.skipped,
    );
    let study = outcome.into_study();

    let mut table = TextTable::new(["Metric", "Value"]);
    table.push_row(["Dataset".to_string(), name]);
    table.push_row(["Feed files".to_string(), opts.files.len().to_string()]);
    table.push_row(["Feed bytes".to_string(), feed_bytes.to_string()]);
    table.push_row(["Entries parsed".to_string(), parsed.to_string()]);
    table.push_row(["Entries skipped".to_string(), skipped.to_string()]);
    table.push_row(["Distinct vulnerabilities".to_string(), entries.to_string()]);
    table.push_row(["Valid".to_string(), study.valid_count().to_string()]);
    table.push_row([
        "Estimated bytes".to_string(),
        study.estimated_bytes().to_string(),
    ]);
    let title = "Feed ingestion summary";
    let sections = [Section::table(title, table.clone())];
    Ok(emit(opts.format, &sections, || {
        format!("{}{}", header(title), table.render())
    }))
}

/// Streams every `opts.files` feed through the bounded ingester (64 KiB
/// reads, never buffering a whole feed) — shared by `ingest` and
/// `snapshot save`.
fn ingest_files(opts: &Options, command: &str) -> Result<IngestOutcome, CliError> {
    if opts.files.is_empty() {
        return Err(CliError::Usage(format!(
            "{command} expects at least one feed file\n\n{}",
            usage()
        )));
    }
    let mut ingester = FeedIngester::new(IngestBudget {
        max_bytes: opts.max_dataset_bytes.max(1),
        ..IngestBudget::default()
    });
    let mut chunk = vec![0u8; 64 * 1024];
    for path in &opts.files {
        let mut file = std::fs::File::open(path)?;
        loop {
            let n = file.read(&mut chunk)?;
            if n == 0 {
                break;
            }
            ingester
                .push(&chunk[..n])
                .map_err(|error| CliError::Usage(format!("error ingesting {path}: {error}")))?;
        }
    }
    ingester
        .finish()
        .map_err(|error| CliError::Usage(format!("error: {error}")))
}

/// `osdiv snapshot <save|load|inspect>`: the on-disk `.osdv` tenant format
/// (see docs/SNAPSHOT_FORMAT.md) as a standalone tool — write snapshots
/// outside any server, verify a backup decodes, or dump the section table
/// of a file without decoding its payloads.
fn snapshot_command(args: &[String]) -> Result<String, CliError> {
    let Some(sub) = args.first() else {
        return Err(CliError::Usage(format!(
            "snapshot expects a subcommand: save, load or inspect\n\n{}",
            usage()
        )));
    };
    let opts = parse_options(&args[1..])?;
    match sub.as_str() {
        "save" => snapshot_save(&opts),
        "load" => snapshot_load(&opts),
        "inspect" => snapshot_inspect(&opts),
        other => Err(CliError::Usage(format!(
            "unknown snapshot subcommand {other:?} (expected save, load or inspect)\n\n{}",
            usage()
        ))),
    }
}

/// The single `.osdv` file argument of `snapshot load` / `snapshot inspect`.
fn snapshot_file<'a>(opts: &'a Options, command: &str) -> Result<&'a str, CliError> {
    match opts.files.as_slice() {
        [path] => Ok(path),
        _ => Err(CliError::Usage(format!(
            "snapshot {command} expects exactly one .osdv file\n\n{}",
            usage()
        ))),
    }
}

/// A snapshot decoding error: exit code 1, not a usage error.
fn corrupt(path: &str, error: impl std::fmt::Display) -> CliError {
    CliError::Io(std::io::Error::other(format!("{path}: {error}")))
}

/// `osdiv snapshot save --out <file.osdv> [feed.xml...]`: snapshot the
/// seed-generated dataset, or the union of the given NVD feeds. The META
/// section carries the same source annotations `osdiv serve --data-dir`
/// writes, so the file can be dropped into a data dir as `<name>.osdv`
/// and recovered as a tenant at the next boot.
fn snapshot_save(opts: &Options) -> Result<String, CliError> {
    let Some(out) = &opts.out else {
        return Err(CliError::Usage(format!(
            "snapshot save expects --out <file.osdv>\n\n{}",
            usage()
        )));
    };
    let (study, source) = if opts.files.is_empty() {
        let study = study_session_with_seed(opts.seed);
        (study, DatasetSource::Synthetic { seed: opts.seed })
    } else {
        let outcome = ingest_files(opts, "snapshot save")?;
        let source = DatasetSource::Ingested {
            entries: outcome.entries,
            skipped: outcome.skipped,
            feed_bytes: outcome.feed_bytes,
        };
        (outcome.into_study(), source)
    };
    let bytes = Snapshot::to_bytes(study.dataset(), &source_meta(&source));
    std::fs::write(out, &bytes)?;

    let mut table = TextTable::new(["Metric", "Value"]);
    table.push_row(["Snapshot".to_string(), out.clone()]);
    table.push_row(["File bytes".to_string(), bytes.len().to_string()]);
    table.push_row([
        "Distinct vulnerabilities".to_string(),
        study.dataset().store().vulnerability_count().to_string(),
    ]);
    table.push_row(["Valid".to_string(), study.valid_count().to_string()]);
    for (key, value) in source_meta(&source) {
        table.push_row([format!("meta:{key}"), value]);
    }
    let title = "Snapshot written";
    let sections = [Section::table(title, table.clone())];
    Ok(emit(opts.format, &sections, || {
        format!("{}{}", header(title), table.render())
    }))
}

/// `osdiv snapshot load <file.osdv>`: decode the snapshot completely
/// (every CRC checked, the store reconstructed) and print what it holds —
/// the "does my backup restore" check.
fn snapshot_load(opts: &Options) -> Result<String, CliError> {
    let path = snapshot_file(opts, "load")?;
    let bytes = std::fs::read(path)?;
    let snapshot = Snapshot::from_bytes(&bytes).map_err(|error| corrupt(path, error))?;
    let index_loaded = snapshot.index_loaded;
    let meta = snapshot.meta.clone();
    let study = Study::new(snapshot.dataset);

    let mut table = TextTable::new(["Metric", "Value"]);
    table.push_row(["Snapshot".to_string(), path.to_string()]);
    table.push_row(["File bytes".to_string(), bytes.len().to_string()]);
    table.push_row([
        "Distinct vulnerabilities".to_string(),
        study.dataset().store().vulnerability_count().to_string(),
    ]);
    table.push_row(["Valid".to_string(), study.valid_count().to_string()]);
    table.push_row([
        "Count index".to_string(),
        if index_loaded {
            "loaded from snapshot".to_string()
        } else {
            "absent or unreadable; rebuilt lazily".to_string()
        },
    ]);
    for (key, value) in meta {
        table.push_row([format!("meta:{key}"), value]);
    }
    let title = "Snapshot contents";
    let sections = [Section::table(title, table.clone())];
    Ok(emit(opts.format, &sections, || {
        format!("{}{}", header(title), table.render())
    }))
}

/// `osdiv snapshot inspect <file.osdv>`: dump the header and section
/// table (ids, versions, offsets, lengths, CRC verdicts) without decoding
/// any payload — the forensic view of docs/SNAPSHOT_FORMAT.md.
fn snapshot_inspect(opts: &Options) -> Result<String, CliError> {
    let path = snapshot_file(opts, "inspect")?;
    let bytes = std::fs::read(path)?;
    let info = Snapshot::inspect(&bytes).map_err(|error| corrupt(path, error))?;

    let mut table = TextTable::new([
        "Section", "Id", "Version", "Offset", "Length", "CRC-32", "CRC ok",
    ]);
    for section in &info.sections {
        table.push_row([
            section.name.to_string(),
            section.id.to_string(),
            section.version.to_string(),
            section.offset.to_string(),
            section.length.to_string(),
            format!("{:08x}", section.crc32),
            if section.crc_ok { "yes" } else { "NO" }.to_string(),
        ]);
    }
    let title = format!(
        "Snapshot {path}: format v{}, {} bytes, {} sections",
        info.format_version,
        info.total_bytes,
        info.sections.len()
    );
    let sections = [Section::table(title.clone(), table.clone())];
    Ok(emit(opts.format, &sections, || {
        format!("{}{}", header(&title), table.render())
    }))
}

/// `osdiv debug <spans|registry>`: the `/v1/debug` introspection views
/// without a server. `spans` instruments a full boot — snapshot recovery
/// when `--data-dir` is given, then every analysis — and dumps the
/// flight-recorder ring as Chrome trace-event JSON (load it in Perfetto
/// or `chrome://tracing`). `registry` prints the recovered tenant
/// registry as JSON. Both answer in one pass over a bounded structure
/// (the ring / the tenant list), like their HTTP counterparts.
fn debug_command(args: &[String]) -> Result<String, CliError> {
    let Some(sub) = args.first() else {
        return Err(CliError::Usage(format!(
            "debug expects a subcommand: spans or registry\n\n{}",
            usage()
        )));
    };
    let opts = parse_options(&args[1..])?;
    match sub.as_str() {
        "spans" => debug_boot(&opts, true).map(|_| osdiv_serve::debug::spans_json()),
        "registry" => {
            let registry = debug_boot(&opts, false)?;
            Ok(osdiv_serve::debug::registry_json(&registry))
        }
        other => Err(CliError::Usage(format!(
            "unknown debug subcommand {other:?} (expected spans or registry)\n\n{}",
            usage()
        ))),
    }
}

/// The shared boot of `osdiv debug`: the seed dataset as the pinned
/// default tenant, plus — when `--data-dir` is given — a read-only
/// recovery of its snapshots (nothing is written). With `warm` the whole
/// analysis registry runs too, so the flight recorder holds the complete
/// boot-and-compute span tree.
fn debug_boot(opts: &Options, warm: bool) -> Result<StudyRegistry, CliError> {
    let study = Arc::new(study_session_with_seed(opts.seed));
    let mut registry = StudyRegistry::with_default(
        Arc::clone(&study),
        opts.seed,
        RegistryOptions {
            max_datasets: opts.max_datasets.max(1),
            max_total_bytes: opts.max_dataset_bytes.max(1),
        },
    );
    if let Some(dir) = &opts.data_dir {
        let store = TenantStore::open_read_only(dir);
        registry = registry.with_persistence(Arc::new(store));
        let recovery = registry.recover(&IngestBudget {
            max_bytes: opts.max_dataset_bytes.max(1),
            ..IngestBudget::default()
        });
        for (name, error) in &recovery.errors {
            eprintln!("osdiv debug: recovery of {name:?}: {error}");
        }
    }
    if warm {
        study.run_all()?;
    }
    Ok(registry)
}

/// `osdiv serve`: pre-warm the session, bind, and run until shutdown.
/// With `--data-dir`, ingested tenants persist as `.osdv` snapshots and
/// crash-recover from ingestion journals at boot; `--no-persist` opens
/// the same directory read-only (recovered snapshots serve, nothing is
/// written).
fn serve(study: Study, opts: &Options) -> Result<String, CliError> {
    // Arm chaos failpoints from `OSDIV_FAILPOINTS`, refusing to start on
    // a typo'd spec — a chaos drill that silently runs without its
    // faults is worse than one that fails loudly.
    match osdiv_core::fault::init_from_env() {
        Ok(0) => {}
        Ok(armed) => println!("osdiv-serve: {armed} failpoint(s) armed from OSDIV_FAILPOINTS"),
        Err(error) => return Err(CliError::Usage(format!("OSDIV_FAILPOINTS: {error}"))),
    }
    let study = Arc::new(study);
    let warmup = std::time::Instant::now();
    study.run_all()?;
    let mut registry = StudyRegistry::with_default(
        Arc::clone(&study),
        opts.seed,
        RegistryOptions {
            max_datasets: opts.max_datasets.max(1),
            max_total_bytes: opts.max_dataset_bytes.max(1),
        },
    );
    let ingest_budget = IngestBudget {
        max_bytes: opts.max_dataset_bytes.max(1),
        ..IngestBudget::default()
    };
    // The structured event log (`--access-log`): `-` streams JSON lines
    // to stdout, anything else appends to the file. Shared by the
    // router's lifecycle events, the server's access lines and the
    // recovery events below.
    let access_log = match opts.access_log.as_deref() {
        None => None,
        Some("-") => Some(Arc::new(osdiv_core::EventLog::stdout())),
        Some(path) => Some(Arc::new(
            osdiv_core::EventLog::append_to(std::path::Path::new(path))
                .map_err(|error| std::io::Error::other(format!("--access-log {path}: {error}")))?,
        )),
    };
    if let Some(dir) = &opts.data_dir {
        let store = if opts.no_persist {
            TenantStore::open_read_only(dir)
        } else {
            TenantStore::open_durable(dir, opts.durability)
                .map_err(|error| std::io::Error::other(format!("--data-dir {dir}: {error}")))?
        };
        registry = registry.with_persistence(Arc::new(store));
        let recovery = registry.recover(&ingest_budget);
        for (name, error) in &recovery.errors {
            eprintln!("osdiv-serve: recovery of {name:?}: {error}");
        }
        if let Some(log) = &access_log {
            let emit = |event: &str, dataset: &str, detail: Option<&str>| {
                let mut line = osdiv_core::JsonLine::new();
                line.u64_field("ts", osdiv_core::obs::unix_micros());
                line.str_field("event", event);
                line.str_field("dataset", dataset);
                if let Some(detail) = detail {
                    line.str_field("detail", detail);
                }
                log.emit(&line.finish());
            };
            for name in &recovery.recovered {
                emit("tenant_recovered", name, None);
            }
            for name in &recovery.replayed {
                emit("journal_replayed", name, None);
            }
            for name in &recovery.discarded_journals {
                emit("journal_discarded", name, None);
            }
            for (name, error) in &recovery.errors {
                emit("recovery_error", name, Some(&error.to_string()));
            }
        }
        println!(
            "osdiv-serve: data dir {dir}: {} tenants recovered, {} journals replayed, {} \
             redundant journals discarded",
            recovery.recovered.len() + recovery.replayed.len(),
            recovery.replayed.len(),
            recovery.discarded_journals.len(),
        );
    }
    let router = Arc::new(Router::new(
        Arc::new(registry),
        RouterOptions {
            seed: opts.seed,
            cache_capacity: 128,
            enable_shutdown: opts.enable_shutdown,
            enable_dataset_delete: opts.enable_dataset_delete,
            enable_debug: opts.enable_debug,
            ingest_budget,
            // Flag wins over the environment; both unset leaves the
            // mutating dataset routes open (pre-0.7 behaviour).
            ingest_token: opts
                .ingest_token
                .clone()
                .or_else(|| std::env::var("OSDIV_INGEST_TOKEN").ok()),
            access_log,
            slow_request_us: opts
                .slow_request_ms
                .map(|ms| ms.saturating_mul(1_000))
                .unwrap_or(osdiv_serve::DEFAULT_SLOW_REQUEST_US),
        },
    ));
    let server = Server::bind(opts.addr.as_str(), router, {
        let mut server_options = ServerOptions {
            threads: opts.threads,
            ..ServerOptions::default()
        };
        if let Some(ms) = opts.io_timeout_ms {
            server_options.io_timeout = std::time::Duration::from_millis(ms.max(1));
        }
        if let Some(depth) = opts.shed_queue_depth {
            server_options.shed_queue_depth = depth.max(1);
        }
        server_options
    })?;
    // Flushed eagerly so wrapper scripts watching a redirected stdout see
    // the bound (possibly ephemeral) port immediately.
    println!(
        "osdiv-serve listening on {} (seed {}, {} threads, {} analyses pre-warmed in {:?})",
        server.local_addr(),
        opts.seed,
        opts.threads,
        AnalysisId::ALL.len(),
        warmup.elapsed(),
    );
    std::io::stdout().flush()?;
    server.run()?;
    Ok("osdiv-serve: shutdown complete\n".to_string())
}

fn parse_options(args: &[String]) -> Result<Options, CliError> {
    let mut opts = Options::default();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| CliError::Usage(format!("{name} expects a value\n\n{}", usage())))
        };
        match flag.as_str() {
            "--format" => opts.format = Format::from_str(&value("--format")?)?,
            "--seed" => {
                let raw = value("--seed")?;
                opts.seed = raw
                    .parse()
                    .map_err(|_| CliError::Usage(format!("invalid --seed {raw:?}")))?;
            }
            "--profile" => opts.profile = Some(ServerProfile::from_str(&value("--profile")?)?),
            "--first-year" => {
                let raw = value("--first-year")?;
                opts.first_year = Some(
                    raw.parse()
                        .map_err(|_| CliError::Usage(format!("invalid --first-year {raw:?}")))?,
                );
            }
            "--last-year" => {
                let raw = value("--last-year")?;
                opts.last_year = Some(
                    raw.parse()
                        .map_err(|_| CliError::Usage(format!("invalid --last-year {raw:?}")))?,
                );
            }
            "--trials" => {
                let raw = value("--trials")?;
                opts.trials = raw
                    .parse()
                    .map_err(|_| CliError::Usage(format!("invalid --trials {raw:?}")))?;
            }
            "--oses" => opts.oses = Some(value("--oses")?),
            "--max-k" => {
                let raw = value("--max-k")?;
                opts.max_k = Some(
                    raw.parse()
                        .map_err(|_| CliError::Usage(format!("invalid --max-k {raw:?}")))?,
                );
            }
            "--addr" => opts.addr = value("--addr")?,
            "--threads" => {
                let raw = value("--threads")?;
                opts.threads = raw
                    .parse()
                    .ok()
                    .filter(|n| *n > 0)
                    .ok_or_else(|| CliError::Usage(format!("invalid --threads {raw:?}")))?;
            }
            "--enable-shutdown" => opts.enable_shutdown = true,
            "--enable-dataset-delete" => opts.enable_dataset_delete = true,
            "--enable-debug" => opts.enable_debug = true,
            "--ingest-token" => opts.ingest_token = Some(value("--ingest-token")?),
            "--max-datasets" => {
                let raw = value("--max-datasets")?;
                opts.max_datasets =
                    raw.parse().ok().filter(|n| *n > 0).ok_or_else(|| {
                        CliError::Usage(format!("invalid --max-datasets {raw:?}"))
                    })?;
            }
            "--max-dataset-bytes" => {
                let raw = value("--max-dataset-bytes")?;
                opts.max_dataset_bytes = raw.parse().ok().filter(|n| *n > 0).ok_or_else(|| {
                    CliError::Usage(format!("invalid --max-dataset-bytes {raw:?}"))
                })?;
            }
            "--name" => opts.name = Some(value("--name")?),
            "--out" => opts.out = Some(value("--out")?),
            "--data-dir" => opts.data_dir = Some(value("--data-dir")?),
            "--no-persist" => opts.no_persist = true,
            "--durability" => {
                let raw = value("--durability")?;
                opts.durability = raw
                    .parse()
                    .map_err(|error| CliError::Usage(format!("--durability: {error}")))?;
            }
            "--io-timeout-ms" => {
                let raw = value("--io-timeout-ms")?;
                opts.io_timeout_ms =
                    Some(raw.parse().ok().filter(|n| *n > 0).ok_or_else(|| {
                        CliError::Usage(format!("invalid --io-timeout-ms {raw:?}"))
                    })?);
            }
            "--shed-queue-depth" => {
                let raw = value("--shed-queue-depth")?;
                opts.shed_queue_depth =
                    Some(raw.parse().ok().filter(|n| *n > 0).ok_or_else(|| {
                        CliError::Usage(format!("invalid --shed-queue-depth {raw:?}"))
                    })?);
            }
            "--access-log" => opts.access_log = Some(value("--access-log")?),
            "--slow-request-ms" => {
                let raw = value("--slow-request-ms")?;
                opts.slow_request_ms =
                    Some(raw.parse().map_err(|_| {
                        CliError::Usage(format!("invalid --slow-request-ms {raw:?}"))
                    })?);
            }
            other if !other.starts_with('-') => opts.files.push(other.to_string()),
            other => {
                return Err(CliError::Usage(format!(
                    "unknown option {other:?}\n\n{}",
                    usage()
                )));
            }
        }
    }
    Ok(opts)
}

fn usage() -> String {
    let mut out = String::from(
        "osdiv — reproduce the tables and figures of \"OS diversity for intrusion \
         tolerance\" (DSN 2011)\n\nUsage: osdiv <command> [options]\n\nCommands:\n",
    );
    for (name, summary) in COMMANDS {
        out.push_str(&format!("  {name:<10} {summary}\n"));
    }
    out.push_str(
        "\nOptions:\n  \
         --format <text|csv|json>         output format (default: text)\n  \
         --seed <N>                       dataset generator seed (default: 2011)\n  \
         --profile <fat|thin|isolated>    server profile for kway/table5/table6/figure3\n  \
         --first-year <Y>                 figure2: first year of the series (default: 1993)\n  \
         --last-year <Y>                  figure2: last year of the series (default: 2010)\n  \
         --trials <N>                     survival: Monte-Carlo trials (default: 400)\n  \
         --oses <a,b,..>                  analysis commands: restrict the OS pool\n  \
         --max-k <N>                      kway: largest group size\n  \
         --addr <host:port>               serve: bind address (default: 127.0.0.1:8080; port 0 = ephemeral)\n  \
         --threads <N>                    serve: worker threads\n  \
         --enable-shutdown                serve: honour POST /v1/shutdown\n  \
         --enable-dataset-delete          serve: honour DELETE /v1/datasets/{name}\n  \
         --enable-debug                   serve: honour GET /v1/debug/* (spans, registry, pool;\n                                   \
         requires the ingest token when one is set)\n  \
         --ingest-token <TOKEN>           serve: require `Authorization: Bearer <TOKEN>` on\n                                   \
         mutating dataset routes (env: OSDIV_INGEST_TOKEN)\n  \
         --max-datasets <N>               serve: dataset registry name cap (default: 16)\n  \
         --max-dataset-bytes <BYTES>      serve/ingest: dataset byte budget (default: 256 MiB)\n  \
         --name <name>                    ingest: label of the summarized dataset\n  \
         --data-dir <dir>                 serve: persist ingested tenants as .osdv snapshots;\n  \
                                          journals crash-recover and snapshots warm-restart at boot\n  \
         --no-persist                     serve: open --data-dir read-only (serve snapshots, write nothing)\n  \
         --durability <rename|full>       serve: snapshot durability policy (default: rename;\n                                   \
         full fsyncs snapshots, the data dir and journal appends — see docs/SNAPSHOT_FORMAT.md)\n  \
         --io-timeout-ms <N>              serve: per-request head-transfer budget; slow-loris\n                                   \
         connections answer 408 and close (default: 10000)\n  \
         --shed-queue-depth <N>           serve: admission-control high-water mark — deeper dispatch\n                                   \
         backlogs shed 503 + Retry-After pre-parse (ingest sheds at N/2)\n  \
         --access-log <PATH|->            serve: structured JSON-lines access/event log\n                                   \
         (one line per request; `-` = stdout; see docs/OBSERVABILITY.md)\n  \
         --slow-request-ms <N>            serve: log requests taking ≥ N ms as slow_request events (default: 500)\n  \
         --out <file.osdv>                snapshot save: output path\n\nSnapshot subcommands \
         (the on-disk format is specified in docs/SNAPSHOT_FORMAT.md):\n  \
         snapshot save --out <f> [feeds]  snapshot the seed dataset or the given NVD feeds\n  \
         snapshot load <f>                fully decode a snapshot (CRC-checked) and summarize it\n  \
         snapshot inspect <f>             dump the header and section table without decoding payloads\n\n\
         Debug subcommands (the offline twins of GET /v1/debug/*; see docs/OBSERVABILITY.md):\n  \
         debug spans [--data-dir <d>]     trace a boot (recovery + every analysis) and dump the\n                                   \
         flight-recorder ring as Chrome trace-event JSON\n  \
         debug registry --data-dir <d>    recover the tenant registry read-only and print it as JSON\n\n\
         Analyses (also subcommands, mirrored at GET /v1/analyses/{id} by `osdiv serve`):\n",
    );
    for entry in osdiv_core::registry() {
        out.push_str(&format!(
            "  {:<10} {} — {}\n",
            entry.id.name(),
            entry.id.deliverables(),
            entry.id.describe()
        ));
    }
    out
}

fn list_analyses(format: Format) -> String {
    let mut table = TextTable::new(["Analysis", "Deliverables", "Description"]);
    for entry in osdiv_core::registry() {
        table.push_row([
            entry.id.name().to_string(),
            entry.id.deliverables().to_string(),
            entry.id.describe().to_string(),
        ]);
    }
    let sections = [Section::table("Analysis registry", table.clone())];
    emit(format, &sections, || table.render())
}

/// Replicates the header style of the historical experiment binaries.
fn header(title: &str) -> String {
    let width = title.len().max(8);
    let bar = "=".repeat(width);
    format!("{bar}\n{title}\n{bar}\n")
}

/// Renders a command's sections: the historical text layout for
/// `Format::Text`, the pluggable sinks otherwise.
fn emit(format: Format, sections: &[Section], text: impl FnOnce() -> String) -> String {
    match format {
        Format::Text => text(),
        other => renderer(other).document(sections),
    }
}

/// Renders one section's body in the text style (aligned table / CSV
/// series), without its heading.
fn body(section: &Section) -> String {
    TextRenderer.artifact(&section.artifact)
}

/// The registry sections of an analysis (used for the CSV/JSON exports so
/// every entry point emits the same section titles as the combined report).
fn registry_sections(study: &Study, id: AnalysisId) -> Result<Vec<Section>, AnalysisError> {
    (osdiv_core::registry_entry(id).sections)(study)
}

fn dispatch(command: &str, study: &Study, opts: &Options) -> Result<String, AnalysisError> {
    match command {
        "table1" => {
            let sections = registry_sections(study, AnalysisId::Validity)?;
            Ok(emit(opts.format, &sections, || {
                format!(
                    "{}{}",
                    header("Table I: distribution of OS vulnerabilities in NVD"),
                    body(&sections[0])
                )
            }))
        }
        "table2" => {
            let sections = registry_sections(study, AnalysisId::Classes)?;
            Ok(emit(opts.format, &sections, || {
                format!(
                    "{}{}",
                    header("Table II: vulnerabilities per OS component class"),
                    body(&sections[0])
                )
            }))
        }
        "table3" => {
            // The pairwise registry entry builds [Table III, Table IV, summary].
            let sections = vec![registry_sections(study, AnalysisId::Pairwise)?.swap_remove(0)];
            Ok(emit(opts.format, &sections, || {
                format!(
                    "{}{}",
                    header("Table III: pairwise common vulnerabilities (1994 - Sept. 2010)"),
                    body(&sections[0])
                )
            }))
        }
        "table4" => {
            let sections = vec![registry_sections(study, AnalysisId::Pairwise)?.swap_remove(1)];
            Ok(emit(opts.format, &sections, || {
                format!(
                    "{}{}",
                    header("Table IV: common vulnerabilities on Isolated Thin Servers"),
                    body(&sections[0])
                )
            }))
        }
        "table5" => {
            let sections = match opts.profile {
                None => registry_sections(study, AnalysisId::Split)?,
                Some(profile) => {
                    let matrix = study.get_with::<SplitMatrix>(&SplitConfig {
                        profile,
                        ..SplitConfig::default()
                    })?;
                    vec![Section::table(
                        "Table V: history vs observed",
                        matrix.to_table(),
                    )]
                }
            };
            Ok(emit(opts.format, &sections, || {
                format!(
                    "{}{}",
                    header(
                        "Table V: history (above diagonal) vs observed (below) common \
                         vulnerabilities"
                    ),
                    body(&sections[0])
                )
            }))
        }
        "table6" => {
            let analysis = match opts.profile {
                None => study.get::<ReleaseAnalysis>()?,
                Some(profile) => {
                    std::sync::Arc::new(study.get_with::<ReleaseAnalysis>(&ReleaseConfig {
                        profile,
                        ..ReleaseConfig::default()
                    })?)
                }
            };
            let sections = match opts.profile {
                None => registry_sections(study, AnalysisId::Releases)?,
                Some(_) => vec![Section::table("Table VI: OS releases", analysis.to_table())],
            };
            Ok(emit(opts.format, &sections, || {
                format!(
                    "{}{}{} of {} release pairs share no vulnerability at all\n",
                    header("Table VI: common vulnerabilities between OS releases"),
                    body(&sections[0]),
                    analysis.disjoint_pairs(),
                    analysis.rows().len()
                )
            }))
        }
        "figure2" => {
            let sections = match (opts.first_year, opts.last_year) {
                (None, None) => registry_sections(study, AnalysisId::Temporal)?,
                (first, last) => {
                    let defaults = TemporalConfig::default();
                    let temporal = study.get_with::<TemporalAnalysis>(&TemporalConfig {
                        first_year: first.unwrap_or(defaults.first_year),
                        last_year: last.unwrap_or(defaults.last_year),
                    })?;
                    OsFamily::ALL
                        .into_iter()
                        .map(|family| {
                            Section::series(
                                format!("Figure 2 ({family} family)"),
                                temporal.family_series(family),
                            )
                        })
                        .collect()
                }
            };
            Ok(emit(opts.format, &sections, || {
                let mut out = String::new();
                for (family, section) in OsFamily::ALL.into_iter().zip(&sections) {
                    out.push_str(&header(&format!(
                        "Figure 2: {family} family (vulnerabilities per year)"
                    )));
                    out.push_str(&body(section));
                    out.push('\n');
                }
                out
            }))
        }
        "figure3" => {
            let analysis = match opts.profile {
                None => study.get::<SelectionAnalysis>()?,
                Some(profile) => {
                    std::sync::Arc::new(study.get_with::<SelectionAnalysis>(&SelectionConfig {
                        profile,
                        ..SelectionConfig::default()
                    })?)
                }
            };
            let sections = match opts.profile {
                None => registry_sections(study, AnalysisId::Selection)?,
                Some(_) => vec![
                    Section::table("Figure 3: replica configurations", analysis.to_table()),
                    Section::table(
                        "Best four-OS groups ranked from history data",
                        analysis.ranking_table(),
                    ),
                ],
            };
            Ok(emit(opts.format, &sections, || {
                let mut out = String::new();
                out.push_str(&header(
                    "Figure 3: replica configurations (history vs observed common vulnerabilities)",
                ));
                out.push_str(&body(&sections[0]));
                out.push('\n');
                out.push_str(&header("Best four-OS groups ranked from history data"));
                for (group, score) in analysis.ranked_groups() {
                    out.push_str(&format!("{group}  history score = {score}\n"));
                }
                out
            }))
        }
        // `kway` is dispatched through the generic registry path in `run`
        // (like every analysis id), so its output is byte-identical to
        // `GET /v1/analyses/kway`. The pre-0.3 dual-profile comparison is
        // two invocations now: `--profile fat` and `--profile isolated`.
        "summary" => {
            let sections = vec![registry_sections(study, AnalysisId::Pairwise)?.swap_remove(2)];
            Ok(emit(opts.format, &sections, || {
                format!(
                    "{}{}",
                    header("Section IV-E: summary of the findings"),
                    body(&sections[0])
                )
            }))
        }
        "survival" => {
            let config = SimulationConfig::default()
                .with_trials(opts.trials)
                .with_seed(7);
            let simulator = Simulator::new(study.dataset(), config);
            let mut configurations = vec![ReplicaSet::homogeneous(OsDistribution::Debian, 4)];
            for (_, oses) in figure3_configurations() {
                configurations.push(ReplicaSet::diverse(oses));
            }
            let mut table = TextTable::new([
                "Configuration",
                "P(system compromised)",
                "Mean time to failure (days)",
                "Mean peak compromised replicas",
            ]);
            for set in &configurations {
                let outcome = simulator.run(set);
                table.push_row([
                    outcome.label().to_string(),
                    format!("{:.2}", outcome.failure_probability()),
                    outcome
                        .mean_time_to_failure_days()
                        .map(|d| format!("{d:.0}"))
                        .unwrap_or_else(|| "never failed".to_string()),
                    format!("{:.2}", outcome.mean_peak_compromised()),
                ]);
            }
            let title = "Survival of replica configurations over 2006-2010 (Monte-Carlo)";
            let sections = [Section::table(title, table.clone())];
            Ok(emit(opts.format, &sections, || {
                format!("{}{}", header(title), table.render())
            }))
        }
        "report" => study.report(opts.format),
        other => unreachable!("command {other} is filtered by the dispatcher"),
    }
}
