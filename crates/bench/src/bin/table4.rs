//! Experiment E5: regenerates Table IV (common vulnerabilities on Isolated
//! Thin Servers broken down by OS part).

use osdiv_bench::harness::{calibrated_study, print_header};
use osdiv_core::{report, PairwiseAnalysis};

fn main() {
    let study = calibrated_study();
    let analysis = PairwiseAnalysis::compute(&study);
    print_header("Table IV: common vulnerabilities on Isolated Thin Servers");
    print!("{}", report::table4(&analysis).render());
}
