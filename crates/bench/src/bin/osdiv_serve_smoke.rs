//! CI smoke client for a running `osdiv serve` instance.
//!
//! ```sh
//! osdiv-serve-smoke 127.0.0.1:PORT [full|persist-ingest|persist-verify] [body-file]
//! ```
//!
//! The default `full` mode hits `/v1/healthz`, `/v1/report?format=json`
//! (twice on one keep-alive connection, the second via `If-None-Match`),
//! a parameterized analysis endpoint plus its error paths, then exercises
//! the dataset tenancy loop — generate a small feed with `datagen` + the
//! `nvd-feed` writer, stream it up as a chunked `PUT /v1/datasets/smoke`,
//! query an analysis with `?dataset=smoke` (asserting 200 and an ETag
//! distinct from the default dataset's), `DELETE` it — checks the
//! `/metrics` counters recorded the run, and finally `POST /v1/shutdown`.
//!
//! The persistence pair drives the kill-and-restart leg against a server
//! started with `--data-dir`: `persist-ingest` streams a deterministic
//! feed up as `PUT /v1/datasets/persist`, asserts `/metrics` counted one
//! snapshot write, and saves the rendered analysis document (plus its
//! ETag) to `body-file` — then CI SIGKILLs the server. After a restart,
//! `persist-verify` asserts the recovered tenant lists as spilled, that
//! its document and ETag are byte-identical to the saved ones, and that
//! the cold boot decoded no snapshot until the first touch
//! (`osdiv_snapshot_loads 1` only after the GET).
//!
//! Exits non-zero with a diagnostic on the first failed expectation; the
//! workflow then waits on the server process to assert a clean exit.
//!
//! The serving side must run with `--enable-shutdown
//! --enable-dataset-delete` (and `--data-dir` for the persistence pair).

use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::process::ExitCode;
use std::time::Duration;

use datagen::{ParametricConfig, ParametricGenerator};
use osdiv_serve::loadgen::{self, read_response, write_request};

fn check(condition: bool, label: &str) -> Result<(), String> {
    if condition {
        println!("ok: {label}");
        Ok(())
    } else {
        Err(format!("FAILED: {label}"))
    }
}

fn run(addr: SocketAddr) -> Result<(), String> {
    let io = |error: std::io::Error| format!("FAILED: io error: {error}");

    // 1. Liveness.
    let health = loadgen::get(addr, "/v1/healthz").map_err(io)?;
    check(health.status == 200, "/v1/healthz answers 200")?;
    check(
        health.body_string().contains("\"status\":\"ok\""),
        "/v1/healthz reports ok",
    )?;
    check(
        health.body_string().contains("\"datasets\":"),
        "/v1/healthz reports the dataset registry",
    )?;

    // 2. The cached report, twice on one keep-alive connection.
    let stream = TcpStream::connect(addr).map_err(io)?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(io)?;
    let mut reader = BufReader::new(stream);
    write_request(reader.get_mut(), "GET", "/v1/report?format=json", &[]).map_err(io)?;
    let report = read_response(&mut reader).map_err(io)?;
    check(report.status == 200, "/v1/report?format=json answers 200")?;
    check(
        report.header("content-type") == Some("application/json"),
        "report content type is application/json",
    )?;
    check(
        report.body_string().starts_with("{\"sections\":["),
        "report body is the sections document",
    )?;
    let etag = report
        .header("etag")
        .ok_or("FAILED: report has no ETag")?
        .to_string();
    write_request(
        reader.get_mut(),
        "GET",
        "/v1/report?format=json",
        &[("If-None-Match", &etag)],
    )
    .map_err(io)?;
    let revalidated = read_response(&mut reader).map_err(io)?;
    check(
        revalidated.status == 304,
        "keep-alive revalidation answers 304",
    )?;
    drop(reader);

    // 3. A parameterized analysis endpoint and its error paths.
    let temporal = loadgen::get(
        addr,
        "/v1/analyses/temporal?first_year=2000&last_year=2005&format=csv",
    )
    .map_err(io)?;
    check(temporal.status == 200, "parameterized temporal answers 200")?;
    check(
        temporal.body_string().contains("2000") && !temporal.body_string().contains("1993"),
        "temporal CSV covers the requested year range only",
    )?;
    let bad = loadgen::get(addr, "/v1/analyses/temporal?first_year=bogus").map_err(io)?;
    check(bad.status == 400, "invalid parameter answers 400")?;
    let missing = loadgen::get(addr, "/v1/analyses/nope").map_err(io)?;
    check(missing.status == 404, "unknown analysis answers 404")?;

    // 4. HEAD mirrors GET metadata without a body.
    let head = loadgen::head(addr, "/v1/report?format=json").map_err(io)?;
    check(head.status == 200, "HEAD /v1/report answers 200")?;
    check(head.body.is_empty(), "HEAD response carries no body")?;
    check(
        head.header("etag") == Some(etag.as_str()),
        "HEAD serves the representation's ETag",
    )?;

    // 5. Dataset tenancy: generate a small feed, stream it up chunked,
    //    query it, compare ETags against the default dataset, delete it.
    let feed = ParametricGenerator::new(ParametricConfig {
        vulnerability_count: 150,
        seed: 7,
        ..ParametricConfig::default()
    })
    .generate()
    .to_feed_xml()
    .map_err(|error| format!("FAILED: feed generation: {error}"))?;
    let chunks: Vec<&[u8]> = feed.as_bytes().chunks(1024).collect();
    let created =
        loadgen::request_chunked(addr, "PUT", "/v1/datasets/smoke", &[], &chunks).map_err(io)?;
    check(
        created.status == 201,
        &format!(
            "chunked PUT /v1/datasets/smoke answers 201 (got {}: {})",
            created.status,
            created.body_string().trim()
        ),
    )?;

    let list = loadgen::get(addr, "/v1/datasets?format=json").map_err(io)?;
    check(
        list.status == 200 && list.body_string().contains("smoke"),
        "/v1/datasets lists the ingested dataset",
    )?;

    let smoke_table =
        loadgen::get(addr, "/v1/analyses/validity?dataset=smoke&format=json").map_err(io)?;
    check(
        smoke_table.status == 200,
        "analysis over ?dataset=smoke answers 200",
    )?;
    let default_table = loadgen::get(addr, "/v1/analyses/validity?format=json").map_err(io)?;
    check(
        smoke_table.header("etag").is_some()
            && smoke_table.header("etag") != default_table.header("etag"),
        "ingested dataset serves a distinct ETag",
    )?;

    let deleted = loadgen::request(addr, "DELETE", "/v1/datasets/smoke", &[]).map_err(io)?;
    check(
        deleted.status == 200,
        "DELETE /v1/datasets/smoke answers 200",
    )?;
    let gone = loadgen::get(addr, "/v1/analyses/validity?dataset=smoke").map_err(io)?;
    check(gone.status == 404, "deleted dataset answers 404")?;

    // 6. Serving counters: /metrics reports the connections, requests and
    //    bytes this very smoke run generated.
    let metrics = loadgen::get(addr, "/metrics").map_err(io)?;
    check(metrics.status == 200, "GET /metrics answers 200")?;
    let exposition = metrics.body_string();
    for counter in [
        "osdiv_connections_accepted",
        "osdiv_requests_served",
        "osdiv_cache_hits",
        "osdiv_cache_misses",
        "osdiv_bytes_out",
    ] {
        check(
            exposition.contains(&format!("# TYPE {counter} counter")),
            &format!("/metrics exposes {counter}"),
        )?;
    }
    check(
        !exposition.contains("osdiv_requests_served 0"),
        "/metrics counted the smoke requests",
    )?;
    check(
        !exposition.contains("osdiv_bytes_out 0\n"),
        "/metrics counted response bytes",
    )?;

    // 7. Graceful shutdown.
    let shutdown = loadgen::request(addr, "POST", "/v1/shutdown", &[]).map_err(io)?;
    check(shutdown.status == 200, "POST /v1/shutdown answers 200")?;
    Ok(())
}

/// The deterministic feed both persistence modes agree on: what
/// `persist-ingest` uploads is exactly what `persist-verify` expects the
/// restarted server to still serve.
fn persist_feed() -> Result<String, String> {
    ParametricGenerator::new(ParametricConfig {
        vulnerability_count: 200,
        seed: 11,
        ..ParametricConfig::default()
    })
    .generate()
    .to_feed_xml()
    .map_err(|error| format!("FAILED: feed generation: {error}"))
}

/// The document whose bytes must survive the kill-and-restart.
const PERSIST_DOC: &str = "/v1/report?dataset=persist&format=json";

/// `persist-ingest`: upload the tenant, prove the snapshot was written,
/// and save the served document + ETag for the post-restart comparison.
fn persist_ingest(addr: SocketAddr, body_file: &str) -> Result<(), String> {
    let io = |error: std::io::Error| format!("FAILED: io error: {error}");

    let feed = persist_feed()?;
    let chunks: Vec<&[u8]> = feed.as_bytes().chunks(1024).collect();
    let created =
        loadgen::request_chunked(addr, "PUT", "/v1/datasets/persist", &[], &chunks).map_err(io)?;
    check(
        created.status == 201,
        &format!(
            "chunked PUT /v1/datasets/persist answers 201 (got {}: {})",
            created.status,
            created.body_string().trim()
        ),
    )?;

    let metrics = loadgen::get(addr, "/metrics").map_err(io)?;
    check(
        metrics.body_string().contains("osdiv_snapshot_writes 1"),
        "/metrics counts one snapshot write after the PUT",
    )?;

    let doc = loadgen::get(addr, PERSIST_DOC).map_err(io)?;
    check(doc.status == 200, "the persisted tenant serves its report")?;
    let etag = doc
        .header("etag")
        .ok_or("FAILED: persisted report has no ETag")?
        .to_string();
    let mut saved = etag.clone().into_bytes();
    saved.push(b'\n');
    saved.extend_from_slice(&doc.body);
    std::fs::write(body_file, &saved).map_err(io)?;
    println!("ok: saved {} byte document, etag {etag}", doc.body.len());
    // No shutdown: the workflow SIGKILLs the server mid-flight on purpose.
    Ok(())
}

/// `persist-verify`: after the restart, the tenant is listed (spilled),
/// serves byte-identical bytes under the same ETag, and the snapshot was
/// decoded lazily — not at boot.
fn persist_verify(addr: SocketAddr, body_file: &str) -> Result<(), String> {
    let io = |error: std::io::Error| format!("FAILED: io error: {error}");
    let saved = std::fs::read(body_file).map_err(io)?;
    let split = saved
        .iter()
        .position(|&b| b == b'\n')
        .ok_or("FAILED: saved body file has no etag line")?;
    let expected_etag = String::from_utf8_lossy(&saved[..split]).to_string();
    let expected_body = &saved[split + 1..];

    let list = loadgen::get(addr, "/v1/datasets?format=json").map_err(io)?;
    check(
        list.status == 200 && list.body_string().contains("persist"),
        "the restarted server lists the recovered tenant",
    )?;
    let metrics = loadgen::get(addr, "/metrics").map_err(io)?;
    check(
        metrics.body_string().contains("osdiv_snapshot_loads 0"),
        "boot recovers the tenant without decoding its snapshot",
    )?;

    let doc = loadgen::get(addr, PERSIST_DOC).map_err(io)?;
    check(doc.status == 200, "the recovered tenant serves its report")?;
    check(
        doc.header("etag") == Some(expected_etag.as_str()),
        "the recovered report carries the pre-kill ETag",
    )?;
    check(
        doc.body == expected_body,
        "the recovered report is byte-identical to the pre-kill document",
    )?;

    let metrics = loadgen::get(addr, "/metrics").map_err(io)?;
    check(
        metrics.body_string().contains("osdiv_snapshot_loads 1"),
        "the first touch decodes exactly one snapshot",
    )?;

    let shutdown = loadgen::request(addr, "POST", "/v1/shutdown", &[]).map_err(io)?;
    check(shutdown.status == 200, "POST /v1/shutdown answers 200")?;
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(addr) = args.first() else {
        eprintln!(
            "usage: osdiv-serve-smoke <addr:port> [full|persist-ingest|persist-verify] [body-file]"
        );
        return ExitCode::from(2);
    };
    let Ok(addr) = addr.parse::<SocketAddr>() else {
        eprintln!("invalid address {addr:?}");
        return ExitCode::from(2);
    };
    let mode = args.get(1).map(String::as_str).unwrap_or("full");
    let result = match mode {
        "full" => run(addr),
        "persist-ingest" | "persist-verify" => {
            let Some(body_file) = args.get(2) else {
                eprintln!("{mode} expects a body-file argument");
                return ExitCode::from(2);
            };
            if mode == "persist-ingest" {
                persist_ingest(addr, body_file)
            } else {
                persist_verify(addr, body_file)
            }
        }
        other => {
            eprintln!("unknown mode {other:?} (expected full, persist-ingest or persist-verify)");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => {
            println!("smoke test passed ({mode})");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
