//! CI smoke client for a running `osdiv serve` instance.
//!
//! ```sh
//! osdiv-serve-smoke 127.0.0.1:PORT [full|persist-ingest|persist-verify|loadgen|chaos] [args...]
//! ```
//!
//! The default `full` mode hits `/v1/healthz`, `/v1/report?format=json`
//! (twice on one keep-alive connection, the second via `If-None-Match`),
//! a parameterized analysis endpoint plus its error paths, then exercises
//! the dataset tenancy loop — generate a small feed with `datagen` + the
//! `nvd-feed` writer, stream it up as a chunked `PUT /v1/datasets/smoke`,
//! query an analysis with `?dataset=smoke` (asserting 200 and an ETag
//! distinct from the default dataset's), `DELETE` it — checks the
//! `/metrics` counters recorded the run, and finally `POST /v1/shutdown`.
//! Along the way it asserts every response carries an `X-Request-Id`
//! (unique across a pipelined burst) and lints the whole `/metrics`
//! exposition: every line parses, every histogram's `le` buckets ascend
//! and accumulate, and each `+Inf` bucket agrees with its `_count`.
//!
//! The `loadgen` mode drives the open-loop Poisson harness
//! ([`loadgen::run_open_loop`]) against the cached report route and
//! writes a machine-readable `BENCH_serve.json`
//! (`osdiv-serve-smoke ADDR loadgen [out-file] [rate] [seconds]`) with
//! the offered/achieved rate, p50/p90/p99/p999, and the cache-hit ratio
//! scraped from `/metrics` — then shuts the server down.
//!
//! The `chaos` mode drives the resilience drill
//! (`osdiv-serve-smoke ADDR chaos [out-file] [io-timeout-ms]`) against a
//! deliberately tiny, failpoint-armed server — see [`run_chaos`] for the
//! required server flags. It asserts the armed failpoint fails exactly
//! one `PUT` (and the retry lands), a slow-loris connection is cut off
//! with a 408 within twice the I/O budget, an overload burst sheds with
//! `503 Retry-After: 1` while cached reads keep answering, and an
//! open-loop run at twice the offered rate stays bounded — then writes a
//! `BENCH_chaos.json` artifact with the shed/timeout/fault counters.
//!
//! The persistence pair drives the kill-and-restart leg against a server
//! started with `--data-dir`: `persist-ingest` streams a deterministic
//! feed up as `PUT /v1/datasets/persist`, asserts `/metrics` counted one
//! snapshot write, and saves the rendered analysis document (plus its
//! ETag) to `body-file` — then CI SIGKILLs the server. After a restart,
//! `persist-verify` asserts the recovered tenant lists as spilled, that
//! its document and ETag are byte-identical to the saved ones, and that
//! the cold boot decoded no snapshot until the first touch
//! (`osdiv_snapshot_loads 1` only after the GET).
//!
//! Exits non-zero with a diagnostic on the first failed expectation; the
//! workflow then waits on the server process to assert a clean exit.
//!
//! The serving side must run with `--enable-shutdown
//! --enable-dataset-delete` (and `--data-dir` for the persistence pair).

use std::collections::{HashMap, HashSet};
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::process::ExitCode;
use std::time::Duration;

use datagen::{ParametricConfig, ParametricGenerator};
use osdiv_core::JsonLine;
use osdiv_serve::loadgen::{self, read_response, write_request, OpenLoopConfig};

fn check(condition: bool, label: &str) -> Result<(), String> {
    if condition {
        println!("ok: {label}");
        Ok(())
    } else {
        Err(format!("FAILED: {label}"))
    }
}

/// Splits a `key="value",...` label body into pairs, honouring `\"`
/// escapes inside values.
fn parse_labels(labels: &str) -> Result<Vec<(String, String)>, String> {
    let mut pairs = Vec::new();
    let mut rest = labels;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=': {rest:?}"))?;
        let key = rest[..eq].to_string();
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return Err(format!("label value is unquoted: {rest:?}"));
        }
        let mut close = None;
        let mut escaped = false;
        for (pos, c) in after.char_indices().skip(1) {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                close = Some(pos);
                break;
            }
        }
        let close = close.ok_or_else(|| format!("unterminated label value: {rest:?}"))?;
        pairs.push((key, after[1..close].to_string()));
        rest = &after[close + 1..];
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped;
        } else if !rest.is_empty() {
            return Err(format!("junk after label value: {rest:?}"));
        }
    }
    Ok(pairs)
}

/// A stable key for one histogram series: family name plus its sorted
/// labels (the `le` pair already removed for bucket samples).
fn series_key(family: &str, pairs: &[(String, String)]) -> String {
    let mut rendered: Vec<String> = pairs
        .iter()
        .map(|(key, val)| format!("{key}={val}"))
        .collect();
    rendered.sort();
    format!("{family}{{{}}}", rendered.join(","))
}

/// Lints a Prometheus text exposition: every line must be a HELP/TYPE
/// comment or a parseable sample, every histogram's `le` boundaries must
/// ascend with cumulative counts, the final bucket must be `+Inf` and
/// agree with the `_count` series, and every bucket family must also
/// expose a `_sum`. Returns the number of distinct histogram series.
fn lint_exposition(exposition: &str) -> Result<usize, String> {
    let mut buckets: HashMap<String, Vec<(f64, f64)>> = HashMap::new();
    let mut counts: HashMap<String, f64> = HashMap::new();
    let mut sums: HashMap<String, f64> = HashMap::new();
    for (number, line) in exposition.lines().enumerate() {
        let lineno = number + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix("# ") {
            if !(comment.starts_with("HELP ") || comment.starts_with("TYPE ")) {
                return Err(format!(
                    "FAILED: /metrics line {lineno} is neither HELP nor TYPE: {line:?}"
                ));
            }
            continue;
        }
        let (series, value) = line.rsplit_once(' ').ok_or_else(|| {
            format!("FAILED: /metrics line {lineno} has no sample value: {line:?}")
        })?;
        let value: f64 = value.parse().map_err(|_| {
            format!("FAILED: /metrics line {lineno} value does not parse: {line:?}")
        })?;
        if !value.is_finite() || value < 0.0 {
            return Err(format!(
                "FAILED: /metrics line {lineno} sample is negative or non-finite: {line:?}"
            ));
        }
        let (name, labels) = match series.split_once('{') {
            Some((name, tail)) => {
                let labels = tail.strip_suffix('}').ok_or_else(|| {
                    format!("FAILED: /metrics line {lineno} has unbalanced braces: {line:?}")
                })?;
                (name, labels)
            }
            None => (series, ""),
        };
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!(
                "FAILED: /metrics line {lineno} metric name is malformed: {line:?}"
            ));
        }
        let pairs = parse_labels(labels)
            .map_err(|error| format!("FAILED: /metrics line {lineno}: {error}"))?;
        if let Some(family) = name.strip_suffix("_bucket") {
            let mut le = None;
            let mut others = Vec::new();
            for (key, val) in pairs {
                if key == "le" {
                    le = Some(if val == "+Inf" {
                        f64::INFINITY
                    } else {
                        val.parse().map_err(|_| {
                            format!("FAILED: /metrics line {lineno} le does not parse: {line:?}")
                        })?
                    });
                } else {
                    others.push((key, val));
                }
            }
            let le = le.ok_or_else(|| {
                format!("FAILED: /metrics line {lineno} bucket has no le label: {line:?}")
            })?;
            buckets
                .entry(series_key(family, &others))
                .or_default()
                .push((le, value));
        } else if let Some(family) = name.strip_suffix("_count") {
            counts.insert(series_key(family, &pairs), value);
        } else if let Some(family) = name.strip_suffix("_sum") {
            sums.insert(series_key(family, &pairs), value);
        }
    }
    if buckets.is_empty() {
        return Err("FAILED: /metrics exposes no histogram series".to_string());
    }
    for (series, entries) in &buckets {
        for pair in entries.windows(2) {
            if pair[0].0 >= pair[1].0 {
                return Err(format!("FAILED: {series} le boundaries do not ascend"));
            }
            if pair[0].1 > pair[1].1 {
                return Err(format!("FAILED: {series} bucket counts are not cumulative"));
            }
        }
        let last = entries.last().expect("bucket series is non-empty");
        if !last.0.is_infinite() {
            return Err(format!("FAILED: {series} does not end with a +Inf bucket"));
        }
        let count = counts
            .get(series)
            .copied()
            .ok_or_else(|| format!("FAILED: {series} has buckets but no _count"))?;
        if last.1 != count {
            return Err(format!(
                "FAILED: {series} +Inf bucket {} disagrees with _count {count}",
                last.1
            ));
        }
        if !sums.contains_key(series) {
            return Err(format!("FAILED: {series} has buckets but no _sum"));
        }
    }
    Ok(buckets.len())
}

/// The value of a label-free sample in an exposition body.
fn scrape_value(exposition: &str, name: &str) -> Option<f64> {
    exposition.lines().find_map(|line| {
        let tail = line.strip_prefix(name)?;
        tail.strip_prefix(' ')?.parse().ok()
    })
}

fn run(addr: SocketAddr) -> Result<(), String> {
    let io = |error: std::io::Error| format!("FAILED: io error: {error}");

    // 1. Liveness.
    let health = loadgen::get(addr, "/v1/healthz").map_err(io)?;
    check(health.status == 200, "/v1/healthz answers 200")?;
    check(
        health.body_string().contains("\"status\":\"ok\""),
        "/v1/healthz reports ok",
    )?;
    check(
        health.body_string().contains("\"datasets\":"),
        "/v1/healthz reports the dataset registry",
    )?;

    // 2. The cached report, twice on one keep-alive connection.
    let stream = TcpStream::connect(addr).map_err(io)?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(io)?;
    let mut reader = BufReader::new(stream);
    write_request(reader.get_mut(), "GET", "/v1/report?format=json", &[]).map_err(io)?;
    let report = read_response(&mut reader).map_err(io)?;
    check(report.status == 200, "/v1/report?format=json answers 200")?;
    check(
        report.header("content-type") == Some("application/json"),
        "report content type is application/json",
    )?;
    check(
        report.body_string().starts_with("{\"sections\":["),
        "report body is the sections document",
    )?;
    let etag = report
        .header("etag")
        .ok_or("FAILED: report has no ETag")?
        .to_string();
    write_request(
        reader.get_mut(),
        "GET",
        "/v1/report?format=json",
        &[("If-None-Match", &etag)],
    )
    .map_err(io)?;
    let revalidated = read_response(&mut reader).map_err(io)?;
    check(
        revalidated.status == 304,
        "keep-alive revalidation answers 304",
    )?;
    check(
        report.header("x-request-id").is_some() && revalidated.header("x-request-id").is_some(),
        "every response carries an X-Request-Id",
    )?;
    check(
        report.header("x-request-id") != revalidated.header("x-request-id"),
        "keep-alive requests get distinct X-Request-Ids",
    )?;
    drop(reader);

    // 2b. A pipelined burst: three requests written back-to-back before
    //     reading — each response still gets its own unique request id.
    let stream = TcpStream::connect(addr).map_err(io)?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(io)?;
    let mut reader = BufReader::new(stream);
    for _ in 0..3 {
        write_request(reader.get_mut(), "GET", "/v1/healthz", &[]).map_err(io)?;
    }
    let mut request_ids = Vec::new();
    for _ in 0..3 {
        let response = read_response(&mut reader).map_err(io)?;
        check(response.status == 200, "pipelined healthz answers 200")?;
        let id = response
            .header("x-request-id")
            .ok_or("FAILED: pipelined response is missing X-Request-Id")?;
        request_ids.push(id.to_string());
    }
    drop(reader);
    check(
        request_ids.iter().collect::<HashSet<_>>().len() == request_ids.len(),
        "pipelined responses carry unique X-Request-Ids",
    )?;

    // 3. A parameterized analysis endpoint and its error paths.
    let temporal = loadgen::get(
        addr,
        "/v1/analyses/temporal?first_year=2000&last_year=2005&format=csv",
    )
    .map_err(io)?;
    check(temporal.status == 200, "parameterized temporal answers 200")?;
    check(
        temporal.body_string().contains("2000") && !temporal.body_string().contains("1993"),
        "temporal CSV covers the requested year range only",
    )?;
    let bad = loadgen::get(addr, "/v1/analyses/temporal?first_year=bogus").map_err(io)?;
    check(bad.status == 400, "invalid parameter answers 400")?;
    let missing = loadgen::get(addr, "/v1/analyses/nope").map_err(io)?;
    check(missing.status == 404, "unknown analysis answers 404")?;

    // 4. HEAD mirrors GET metadata without a body.
    let head = loadgen::head(addr, "/v1/report?format=json").map_err(io)?;
    check(head.status == 200, "HEAD /v1/report answers 200")?;
    check(head.body.is_empty(), "HEAD response carries no body")?;
    check(
        head.header("etag") == Some(etag.as_str()),
        "HEAD serves the representation's ETag",
    )?;

    // 5. Dataset tenancy: generate a small feed, stream it up chunked,
    //    query it, compare ETags against the default dataset, delete it.
    let feed = ParametricGenerator::new(ParametricConfig {
        vulnerability_count: 150,
        seed: 7,
        ..ParametricConfig::default()
    })
    .generate()
    .to_feed_xml()
    .map_err(|error| format!("FAILED: feed generation: {error}"))?;
    let chunks: Vec<&[u8]> = feed.as_bytes().chunks(1024).collect();
    let created =
        loadgen::request_chunked(addr, "PUT", "/v1/datasets/smoke", &[], &chunks).map_err(io)?;
    check(
        created.status == 201,
        &format!(
            "chunked PUT /v1/datasets/smoke answers 201 (got {}: {})",
            created.status,
            created.body_string().trim()
        ),
    )?;

    let list = loadgen::get(addr, "/v1/datasets?format=json").map_err(io)?;
    check(
        list.status == 200 && list.body_string().contains("smoke"),
        "/v1/datasets lists the ingested dataset",
    )?;

    let smoke_table =
        loadgen::get(addr, "/v1/analyses/validity?dataset=smoke&format=json").map_err(io)?;
    check(
        smoke_table.status == 200,
        "analysis over ?dataset=smoke answers 200",
    )?;
    let default_table = loadgen::get(addr, "/v1/analyses/validity?format=json").map_err(io)?;
    check(
        smoke_table.header("etag").is_some()
            && smoke_table.header("etag") != default_table.header("etag"),
        "ingested dataset serves a distinct ETag",
    )?;

    let deleted = loadgen::request(addr, "DELETE", "/v1/datasets/smoke", &[]).map_err(io)?;
    check(
        deleted.status == 200,
        "DELETE /v1/datasets/smoke answers 200",
    )?;
    let gone = loadgen::get(addr, "/v1/analyses/validity?dataset=smoke").map_err(io)?;
    check(gone.status == 404, "deleted dataset answers 404")?;

    // 6. Serving counters: /metrics reports the connections, requests and
    //    bytes this very smoke run generated.
    let metrics = loadgen::get(addr, "/metrics").map_err(io)?;
    check(metrics.status == 200, "GET /metrics answers 200")?;
    let exposition = metrics.body_string();
    for counter in [
        "osdiv_connections_accepted",
        "osdiv_requests_served",
        "osdiv_cache_hits",
        "osdiv_cache_misses",
        "osdiv_bytes_out",
    ] {
        check(
            exposition.contains(&format!("# TYPE {counter} counter")),
            &format!("/metrics exposes {counter}"),
        )?;
    }
    check(
        !exposition.contains("osdiv_requests_served 0"),
        "/metrics counted the smoke requests",
    )?;
    check(
        !exposition.contains("osdiv_bytes_out 0\n"),
        "/metrics counted response bytes",
    )?;
    let histogram_series = lint_exposition(&exposition)?;
    println!("ok: /metrics exposition lints clean ({histogram_series} histogram series)");
    for family in [
        "osdiv_request_duration_seconds",
        "osdiv_stage_duration_seconds",
    ] {
        check(
            exposition.contains(&format!("# TYPE {family} histogram")),
            &format!("/metrics exposes the {family} histogram"),
        )?;
    }
    check(
        exposition.contains("osdiv_request_duration_seconds_count{route=\"report\"}"),
        "the request histogram observed the report route",
    )?;
    check(
        exposition.contains("osdiv_stage_duration_seconds_count{stage=\"render\"}"),
        "the stage histogram observed a render",
    )?;
    check(
        exposition.contains("osdiv_stage_duration_seconds_count{stage=\"ingest_parse\"}"),
        "the stage histogram observed the feed ingest",
    )?;
    check(
        exposition.contains("osdiv_build_info{version=\""),
        "/metrics exposes osdiv_build_info",
    )?;
    check(
        exposition.contains("# TYPE osdiv_uptime_seconds gauge"),
        "/metrics exposes osdiv_uptime_seconds",
    )?;

    // 6b. Saturation & resource gauges: every family is present and the
    //     values are self-consistent with each other.
    for gauge in [
        "osdiv_workers_total",
        "osdiv_workers_busy",
        "osdiv_dispatch_queue_depth",
        "osdiv_connections_active",
        "osdiv_ingest_queue_depth",
        "osdiv_body_cache_entries",
        "osdiv_body_cache_bytes",
        "osdiv_body_cache_byte_budget",
        "osdiv_datasets_total",
        "osdiv_datasets_resident",
        "osdiv_datasets_spilled",
        "osdiv_datasets_lazy",
        "osdiv_datasets_evicted",
        "osdiv_datasets_resident_bytes",
        "osdiv_datasets_byte_budget",
    ] {
        check(
            exposition.contains(&format!("# TYPE {gauge} gauge")),
            &format!("/metrics exposes the {gauge} gauge"),
        )?;
    }
    let gauge = |name: &str| -> Result<f64, String> {
        scrape_value(&exposition, name).ok_or_else(|| format!("FAILED: {name} does not scrape"))
    };
    let workers_total = gauge("osdiv_workers_total")?;
    let workers_busy = gauge("osdiv_workers_busy")?;
    check(
        workers_total >= 1.0,
        "the worker pool reports at least one worker",
    )?;
    check(
        (1.0..=workers_total).contains(&workers_busy),
        &format!(
            "the worker serving /metrics counts itself busy \
             (busy {workers_busy} of {workers_total})"
        ),
    )?;
    check(
        gauge("osdiv_connections_active")? >= 1.0,
        "the /metrics connection counts itself active",
    )?;
    check(
        gauge("osdiv_body_cache_bytes")? <= gauge("osdiv_body_cache_byte_budget")?,
        "the body cache stays inside its byte budget",
    )?;
    let datasets_total = gauge("osdiv_datasets_total")?;
    let state_sum = gauge("osdiv_datasets_resident")?
        + gauge("osdiv_datasets_spilled")?
        + gauge("osdiv_datasets_lazy")?
        + gauge("osdiv_datasets_evicted")?;
    check(
        state_sum == datasets_total,
        &format!(
            "dataset states sum to the registry total \
             ({state_sum} vs {datasets_total})"
        ),
    )?;
    check(
        gauge("osdiv_datasets_resident_bytes")? <= gauge("osdiv_datasets_byte_budget")?,
        "resident dataset bytes stay inside the registry byte budget",
    )?;
    check(
        scrape_value(&exposition, "osdiv_trace_spans_recorded_total").unwrap_or(0.0) > 0.0,
        "the flight recorder captured spans during the smoke run",
    )?;

    // 7. Graceful shutdown.
    let shutdown = loadgen::request(addr, "POST", "/v1/shutdown", &[]).map_err(io)?;
    check(shutdown.status == 200, "POST /v1/shutdown answers 200")?;
    Ok(())
}

/// The deterministic feed both persistence modes agree on: what
/// `persist-ingest` uploads is exactly what `persist-verify` expects the
/// restarted server to still serve.
fn persist_feed() -> Result<String, String> {
    ParametricGenerator::new(ParametricConfig {
        vulnerability_count: 200,
        seed: 11,
        ..ParametricConfig::default()
    })
    .generate()
    .to_feed_xml()
    .map_err(|error| format!("FAILED: feed generation: {error}"))
}

/// The document whose bytes must survive the kill-and-restart.
const PERSIST_DOC: &str = "/v1/report?dataset=persist&format=json";

/// `persist-ingest`: upload the tenant, prove the snapshot was written,
/// and save the served document + ETag for the post-restart comparison.
fn persist_ingest(addr: SocketAddr, body_file: &str) -> Result<(), String> {
    let io = |error: std::io::Error| format!("FAILED: io error: {error}");

    let feed = persist_feed()?;
    let chunks: Vec<&[u8]> = feed.as_bytes().chunks(1024).collect();
    let created =
        loadgen::request_chunked(addr, "PUT", "/v1/datasets/persist", &[], &chunks).map_err(io)?;
    check(
        created.status == 201,
        &format!(
            "chunked PUT /v1/datasets/persist answers 201 (got {}: {})",
            created.status,
            created.body_string().trim()
        ),
    )?;

    let metrics = loadgen::get(addr, "/metrics").map_err(io)?;
    check(
        metrics.body_string().contains("osdiv_snapshot_writes 1"),
        "/metrics counts one snapshot write after the PUT",
    )?;

    let doc = loadgen::get(addr, PERSIST_DOC).map_err(io)?;
    check(doc.status == 200, "the persisted tenant serves its report")?;
    let etag = doc
        .header("etag")
        .ok_or("FAILED: persisted report has no ETag")?
        .to_string();
    let mut saved = etag.clone().into_bytes();
    saved.push(b'\n');
    saved.extend_from_slice(&doc.body);
    std::fs::write(body_file, &saved).map_err(io)?;
    println!("ok: saved {} byte document, etag {etag}", doc.body.len());
    // No shutdown: the workflow SIGKILLs the server mid-flight on purpose.
    Ok(())
}

/// `persist-verify`: after the restart, the tenant is listed (spilled),
/// serves byte-identical bytes under the same ETag, and the snapshot was
/// decoded lazily — not at boot.
fn persist_verify(addr: SocketAddr, body_file: &str) -> Result<(), String> {
    let io = |error: std::io::Error| format!("FAILED: io error: {error}");
    let saved = std::fs::read(body_file).map_err(io)?;
    let split = saved
        .iter()
        .position(|&b| b == b'\n')
        .ok_or("FAILED: saved body file has no etag line")?;
    let expected_etag = String::from_utf8_lossy(&saved[..split]).to_string();
    let expected_body = &saved[split + 1..];

    let list = loadgen::get(addr, "/v1/datasets?format=json").map_err(io)?;
    check(
        list.status == 200 && list.body_string().contains("persist"),
        "the restarted server lists the recovered tenant",
    )?;
    let metrics = loadgen::get(addr, "/metrics").map_err(io)?;
    check(
        metrics.body_string().contains("osdiv_snapshot_loads 0"),
        "boot recovers the tenant without decoding its snapshot",
    )?;

    let doc = loadgen::get(addr, PERSIST_DOC).map_err(io)?;
    check(doc.status == 200, "the recovered tenant serves its report")?;
    check(
        doc.header("etag") == Some(expected_etag.as_str()),
        "the recovered report carries the pre-kill ETag",
    )?;
    check(
        doc.body == expected_body,
        "the recovered report is byte-identical to the pre-kill document",
    )?;

    let metrics = loadgen::get(addr, "/metrics").map_err(io)?;
    check(
        metrics.body_string().contains("osdiv_snapshot_loads 1"),
        "the first touch decodes exactly one snapshot",
    )?;

    let shutdown = loadgen::request(addr, "POST", "/v1/shutdown", &[]).map_err(io)?;
    check(shutdown.status == 200, "POST /v1/shutdown answers 200")?;
    Ok(())
}

/// `loadgen`: drive the open-loop Poisson harness against the cached
/// report route, lint `/metrics`, and write a machine-readable
/// `BENCH_serve.json` artifact — then shut the server down.
fn run_loadgen_bench(
    addr: SocketAddr,
    out_file: &str,
    rate_per_sec: f64,
    seconds: f64,
) -> Result<(), String> {
    let io = |error: std::io::Error| format!("FAILED: io error: {error}");

    // Warm the render cache so the run measures steady-state serving.
    let warm = loadgen::get(addr, "/v1/report?format=json").map_err(io)?;
    check(warm.status == 200, "warmup report answers 200")?;

    let config = OpenLoopConfig {
        rate_per_sec,
        duration: Duration::from_secs_f64(seconds),
        ..OpenLoopConfig::default()
    };
    let report = loadgen::run_open_loop(addr, &config);
    println!("open-loop: {}", report.summary());
    check(report.ok > 0, "open-loop run completed requests")?;
    check(
        report.errors == 0,
        &format!("open-loop run had no errors (got {})", report.errors),
    )?;

    let metrics = loadgen::get(addr, "/metrics").map_err(io)?;
    check(metrics.status == 200, "GET /metrics answers 200")?;
    let exposition = metrics.body_string();
    let histogram_series = lint_exposition(&exposition)?;
    println!("ok: /metrics exposition lints clean ({histogram_series} histogram series)");
    let hits = scrape_value(&exposition, "osdiv_cache_hits").unwrap_or(0.0);
    let misses = scrape_value(&exposition, "osdiv_cache_misses").unwrap_or(0.0);
    let lookups = hits + misses;
    let hit_ratio = if lookups > 0.0 { hits / lookups } else { 0.0 };

    let mut line = JsonLine::new();
    line.str_field("schema", "osdiv-bench-serve/1");
    line.str_field("path", &config.path);
    line.f64_field("target_rate_per_sec", config.rate_per_sec);
    line.f64_field("duration_secs", config.duration.as_secs_f64());
    line.u64_field("connections", config.connections as u64);
    line.u64_field("requests_total", report.total as u64);
    line.u64_field("requests_ok", report.ok as u64);
    line.u64_field("errors", report.errors as u64);
    line.f64_field("elapsed_secs", report.elapsed.as_secs_f64());
    line.f64_field("achieved_rate_per_sec", report.achieved_rate());
    line.u64_field("p50_us", report.quantile_us(0.50));
    line.u64_field("p90_us", report.quantile_us(0.90));
    line.u64_field("p99_us", report.quantile_us(0.99));
    line.u64_field("p999_us", report.quantile_us(0.999));
    line.f64_field("mean_us", report.latency.mean_us());
    line.f64_field("cache_hit_ratio", hit_ratio);
    let mut payload = line.finish();
    payload.push('\n');
    std::fs::write(out_file, payload).map_err(io)?;
    println!("ok: wrote {out_file}");

    let shutdown = loadgen::request(addr, "POST", "/v1/shutdown", &[]).map_err(io)?;
    check(shutdown.status == 200, "POST /v1/shutdown answers 200")?;
    Ok(())
}

/// `chaos`: the fault-injection and overload drill. The server must run
/// small and armed:
///
/// ```sh
/// OSDIV_FAILPOINTS=ingest.parse=nth:1 osdiv serve --threads 2 \
///     --io-timeout-ms <io-timeout-ms> --shed-queue-depth 4 \
///     --enable-shutdown ...
/// ```
///
/// Legs, in order: the armed failpoint fails exactly one `PUT` and the
/// fault-free retry succeeds; a one-byte-at-a-time slow loris is answered
/// 408 and cut off within twice the I/O budget; an overload burst against
/// two pinned workers sheds `503 Retry-After: 1` while cached reads keep
/// answering; an open-loop run at twice the sustainable rate completes
/// with bounded p99 over the successes. The final `/metrics` scrape must
/// count sheds, I/O timeouts and injected faults, and the counters land
/// in the `BENCH_chaos.json` artifact.
fn run_chaos(addr: SocketAddr, out_file: &str, io_timeout_ms: u64) -> Result<(), String> {
    use std::io::{Read, Write};
    let io = |error: std::io::Error| format!("FAILED: io error: {error}");

    // 1. The armed ingest.parse failpoint: first PUT fails, retry lands.
    let feed = ParametricGenerator::new(ParametricConfig {
        vulnerability_count: 80,
        seed: 13,
        ..ParametricConfig::default()
    })
    .generate()
    .to_feed_xml()
    .map_err(|error| format!("FAILED: feed generation: {error}"))?;
    let chunks: Vec<&[u8]> = feed.as_bytes().chunks(1024).collect();
    let faulted =
        loadgen::request_chunked(addr, "PUT", "/v1/datasets/chaos", &[], &chunks).map_err(io)?;
    check(
        faulted.status >= 400,
        &format!(
            "the armed ingest.parse failpoint fails the first PUT (got {})",
            faulted.status
        ),
    )?;
    let retried =
        loadgen::request_chunked(addr, "PUT", "/v1/datasets/chaos", &[], &chunks).map_err(io)?;
    check(
        retried.status == 201,
        &format!(
            "the retry after the one-shot fault succeeds (got {}: {})",
            retried.status,
            retried.body_string().trim()
        ),
    )?;
    let metrics = loadgen::get(addr, "/metrics").map_err(io)?;
    check(
        scrape_value(&metrics.body_string(), "osdiv_faults_injected_total").unwrap_or(0.0) >= 1.0,
        "/metrics counts the injected fault",
    )?;

    // 2. Slow loris: trickle a request head one byte at a time and time
    //    how long the server lets it pin a worker.
    let budget = Duration::from_millis(io_timeout_ms);
    let stream = TcpStream::connect(addr).map_err(io)?;
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .map_err(io)?;
    let partial = b"GET /v1/healthz HTTP/1.1\r\n";
    let started = std::time::Instant::now();
    let mut closed_after = None;
    let mut response = Vec::new();
    let mut trickled = 0;
    let mut buf = [0u8; 1024];
    while started.elapsed() < budget * 4 {
        if trickled < partial.len() {
            let _ = (&stream).write_all(&partial[trickled..trickled + 1]);
            trickled += 1;
        }
        match (&stream).read(&mut buf) {
            Ok(0) => {
                closed_after = Some(started.elapsed());
                break;
            }
            Ok(n) => response.extend_from_slice(&buf[..n]),
            Err(error)
                if error.kind() == std::io::ErrorKind::WouldBlock
                    || error.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => {
                closed_after = Some(started.elapsed());
                break;
            }
        }
    }
    let closed_after = closed_after.ok_or("FAILED: the slow loris was never cut off")?;
    check(
        closed_after <= budget * 2,
        &format!(
            "slow loris cut off within twice the I/O budget ({}ms of {}ms)",
            closed_after.as_millis(),
            2 * io_timeout_ms
        ),
    )?;
    check(
        String::from_utf8_lossy(&response).starts_with("HTTP/1.1 408"),
        "the cut-off answers 408 before closing",
    )?;
    let metrics = loadgen::get(addr, "/metrics").map_err(io)?;
    check(
        scrape_value(&metrics.body_string(), "osdiv_io_timeouts_total").unwrap_or(0.0) >= 1.0,
        "/metrics counts the I/O timeout",
    )?;

    // 3. Overload: pin both workers with loris connections, then burst
    //    cached GETs and ingest PUTs into the dispatch queue. Sheds must
    //    answer 503 with Retry-After while cached reads keep landing.
    let mut pins = Vec::new();
    for _ in 0..2 {
        let stream = TcpStream::connect(addr).map_err(io)?;
        (&stream).write_all(b"GET /v1/healthz HT").map_err(io)?;
        pins.push(stream);
    }
    std::thread::sleep(Duration::from_millis(100));
    let mut handles = Vec::new();
    for i in 0..16 {
        let body = feed.clone();
        handles.push(std::thread::spawn(move || {
            if i % 4 == 0 {
                loadgen::request_with_body(
                    addr,
                    "PUT",
                    &format!("/v1/datasets/burst-{i}"),
                    &[],
                    body.as_bytes(),
                )
            } else {
                loadgen::get(addr, "/v1/report?format=json")
            }
        }));
    }
    let mut served = 0usize;
    let mut shed = 0usize;
    for handle in handles {
        let response = handle
            .join()
            .map_err(|_| "FAILED: a burst worker panicked".to_string())?
            .map_err(io)?;
        match response.status {
            200 | 201 => served += 1,
            503 => {
                check(
                    response.header("retry-after") == Some("1"),
                    "every shed 503 carries Retry-After: 1",
                )?;
                shed += 1;
            }
            other => return Err(format!("FAILED: burst got unexpected status {other}")),
        }
    }
    drop(pins);
    println!("overload burst: {served} served, {shed} shed");
    check(served >= 1, "cached reads survive the overload burst")?;
    check(shed >= 1, "the overload burst sheds at least one request")?;
    let metrics = loadgen::get(addr, "/metrics").map_err(io)?;
    check(
        scrape_value(&metrics.body_string(), "osdiv_shed_total").unwrap_or(0.0) >= 1.0,
        "/metrics counts the sheds",
    )?;

    // 4. Open loop at twice a rate this tiny server can absorb: the
    //    schedule must complete (sheds count as errors, not aborts) and
    //    the successes must stay bounded.
    let config = OpenLoopConfig {
        rate_per_sec: 2_000.0,
        duration: Duration::from_secs_f64(2.0),
        ..OpenLoopConfig::default()
    };
    let report = loadgen::run_open_loop(addr, &config);
    println!("open-loop: {}", report.summary());
    check(report.ok > 0, "the open-loop run completed requests")?;
    check(
        report.quantile_us(0.99) < 2_000_000,
        &format!(
            "open-loop p99 stays bounded under overload ({}us)",
            report.quantile_us(0.99)
        ),
    )?;

    // 5. The artifact: the drill's counters, machine-readable.
    let metrics = loadgen::get(addr, "/metrics").map_err(io)?;
    let exposition = metrics.body_string();
    let histogram_series = lint_exposition(&exposition)?;
    println!("ok: /metrics exposition lints clean ({histogram_series} histogram series)");
    let mut line = JsonLine::new();
    line.str_field("schema", "osdiv-bench-chaos/1");
    line.u64_field("io_timeout_ms", io_timeout_ms);
    line.u64_field("burst_served", served as u64);
    line.u64_field("burst_shed", shed as u64);
    line.u64_field("loris_cutoff_ms", closed_after.as_millis() as u64);
    line.f64_field("target_rate_per_sec", config.rate_per_sec);
    line.u64_field("requests_ok", report.ok as u64);
    line.u64_field("errors", report.errors as u64);
    line.u64_field("p50_us", report.quantile_us(0.50));
    line.u64_field("p99_us", report.quantile_us(0.99));
    line.f64_field(
        "shed_total",
        scrape_value(&exposition, "osdiv_shed_total").unwrap_or(0.0),
    );
    line.f64_field(
        "io_timeouts_total",
        scrape_value(&exposition, "osdiv_io_timeouts_total").unwrap_or(0.0),
    );
    line.f64_field(
        "faults_injected_total",
        scrape_value(&exposition, "osdiv_faults_injected_total").unwrap_or(0.0),
    );
    let mut payload = line.finish();
    payload.push('\n');
    std::fs::write(out_file, payload).map_err(io)?;
    println!("ok: wrote {out_file}");

    let shutdown = loadgen::request(addr, "POST", "/v1/shutdown", &[]).map_err(io)?;
    check(shutdown.status == 200, "POST /v1/shutdown answers 200")?;
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(addr) = args.first() else {
        eprintln!(
            "usage: osdiv-serve-smoke <addr:port> [full|persist-ingest|persist-verify|loadgen|chaos] [args...]"
        );
        return ExitCode::from(2);
    };
    let Ok(addr) = addr.parse::<SocketAddr>() else {
        eprintln!("invalid address {addr:?}");
        return ExitCode::from(2);
    };
    let mode = args.get(1).map(String::as_str).unwrap_or("full");
    let result = match mode {
        "full" => run(addr),
        "persist-ingest" | "persist-verify" => {
            let Some(body_file) = args.get(2) else {
                eprintln!("{mode} expects a body-file argument");
                return ExitCode::from(2);
            };
            if mode == "persist-ingest" {
                persist_ingest(addr, body_file)
            } else {
                persist_verify(addr, body_file)
            }
        }
        "loadgen" => {
            let out_file = args
                .get(2)
                .map(String::as_str)
                .unwrap_or("BENCH_serve.json");
            let rate_per_sec = match args.get(3).map(|raw| raw.parse::<f64>()) {
                None => 1_000.0,
                Some(Ok(rate)) if rate > 0.0 => rate,
                Some(_) => {
                    eprintln!("loadgen rate must be a positive number");
                    return ExitCode::from(2);
                }
            };
            let seconds = match args.get(4).map(|raw| raw.parse::<f64>()) {
                None => 2.0,
                Some(Ok(seconds)) if seconds > 0.0 => seconds,
                Some(_) => {
                    eprintln!("loadgen seconds must be a positive number");
                    return ExitCode::from(2);
                }
            };
            run_loadgen_bench(addr, out_file, rate_per_sec, seconds)
        }
        "chaos" => {
            let out_file = args
                .get(2)
                .map(String::as_str)
                .unwrap_or("BENCH_chaos.json");
            let io_timeout_ms = match args.get(3).map(|raw| raw.parse::<u64>()) {
                None => 500,
                Some(Ok(ms)) if ms > 0 => ms,
                Some(_) => {
                    eprintln!("chaos io-timeout-ms must be a positive integer");
                    return ExitCode::from(2);
                }
            };
            run_chaos(addr, out_file, io_timeout_ms)
        }
        other => {
            eprintln!(
                "unknown mode {other:?} (expected full, persist-ingest, persist-verify, loadgen or chaos)"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => {
            println!("smoke test passed ({mode})");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
