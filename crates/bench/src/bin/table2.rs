//! Experiment E2: regenerates Table II (vulnerabilities per OS component
//! class).

use osdiv_bench::harness::{calibrated_study, print_header};
use osdiv_core::{report, ClassDistribution};

fn main() {
    let study = calibrated_study();
    let distribution = ClassDistribution::compute(&study);
    print_header("Table II: vulnerabilities per OS component class");
    print!("{}", report::table2(&distribution).render());
}
