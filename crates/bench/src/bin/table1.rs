//! Experiment E1: regenerates Table I (distribution of OS vulnerabilities in
//! the NVD by validity flag).

use osdiv_bench::harness::{calibrated_study, print_header};
use osdiv_core::{report, ValidityDistribution};

fn main() {
    let study = calibrated_study();
    let distribution = ValidityDistribution::compute(&study);
    print_header("Table I: distribution of OS vulnerabilities in NVD");
    print!("{}", report::table1(&distribution).render());
}
