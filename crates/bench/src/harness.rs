//! Shared helpers for the experiment binaries and Criterion benches.

use datagen::CalibratedGenerator;
use osdiv_core::{Study, StudyDataset};

/// The seed used by every experiment binary so their outputs are mutually
/// consistent (and consistent with EXPERIMENTS.md).
pub const EXPERIMENT_SEED: u64 = 2011;

/// Builds the calibrated study dataset used by every experiment.
pub fn calibrated_study() -> StudyDataset {
    let dataset = CalibratedGenerator::new(EXPERIMENT_SEED).generate();
    StudyDataset::from_entries(dataset.entries())
}

/// Builds a [`Study`] session over the calibrated dataset at the default
/// experiment seed.
pub fn study_session() -> Study {
    study_session_with_seed(EXPERIMENT_SEED)
}

/// Builds a [`Study`] session over the calibrated dataset at an arbitrary
/// seed (the CLI's `--seed` flag).
pub fn study_session_with_seed(seed: u64) -> Study {
    let dataset = CalibratedGenerator::new(seed).generate();
    Study::from_entries(dataset.entries())
}

/// Prints a section header in the style used by all experiment binaries.
pub fn print_header(title: &str) {
    let width = title.len().max(8);
    println!("{}", "=".repeat(width));
    println!("{title}");
    println!("{}", "=".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn print_header_does_not_panic() {
        print_header("Table I");
    }

    #[test]
    fn calibrated_study_has_the_expected_scale() {
        let study = calibrated_study();
        assert!(study.valid_count() > 1500);
        assert!(study.store().vulnerability_count() > study.valid_count());
    }
}
