//! Experiment and benchmark harness for the OS-diversity reproduction.
//!
//! This crate hosts:
//!
//! * the `osdiv` CLI (`src/bin/osdiv.rs`): one dispatcher with a subcommand
//!   per table/figure of the paper, driven by the
//!   [`osdiv_core::registry`](osdiv_core::analysis::registry) so new
//!   analyses appear automatically, with `--format text|csv|json` exports
//!   through the pluggable renderers;
//! * Criterion benches (`benches/*`) that measure the cost of the full
//!   analysis pipeline, each individual experiment, and the sequential vs
//!   parallel `Study::run_all` session warm-up.
//!
//! The library portion only re-exports small helpers shared by the CLI and
//! the benches.

pub mod harness;
