//! Experiment and benchmark harness for the OS-diversity reproduction.
//!
//! This crate hosts:
//!
//! * binary targets (`src/bin/*`) that regenerate every table and figure of
//!   the paper from the calibrated synthetic dataset and print them in the
//!   paper's layout;
//! * Criterion benches (`benches/*`) that measure the cost of the full
//!   analysis pipeline and of each individual experiment.
//!
//! The library portion only re-exports small helpers shared by the binaries
//! and benches.

pub mod harness;
