//! Byte-identity of the serving layer and the CLI: for every registered
//! analysis and every output format, `GET /v1/analyses/{id}?format=f`
//! must serve exactly the bytes `osdiv {id} --format f` prints for the
//! same seed — plus the combined report and a parameterized request.

use std::process::Command;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use datagen::CalibratedGenerator;
use osdiv_core::{AnalysisId, Format, Study};
use osdiv_serve::{loadgen, Router, RouterOptions, Server, ServerHandle, ServerOptions};

const SEED: u64 = 2011;

/// Runs the real `osdiv` binary and returns its stdout.
fn osdiv(args: &[&str]) -> String {
    let output = Command::new(env!("CARGO_BIN_EXE_osdiv"))
        .args(args)
        .output()
        .expect("the osdiv binary runs");
    assert!(
        output.status.success(),
        "osdiv {args:?} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("osdiv emits UTF-8")
}

/// One shared server over the CLI's default seed.
fn server() -> &'static ServerHandle {
    static SERVER: OnceLock<ServerHandle> = OnceLock::new();
    SERVER.get_or_init(|| {
        let dataset = CalibratedGenerator::new(SEED).generate();
        let study = Study::from_entries(dataset.entries());
        study.run_all().expect("default configurations are valid");
        let router = Arc::new(Router::with_study(
            Arc::new(study),
            RouterOptions {
                seed: SEED,
                ..RouterOptions::default()
            },
        ));
        let server = Server::bind(
            "127.0.0.1:0",
            router,
            ServerOptions {
                threads: 2,
                read_timeout: Duration::from_secs(5),
                max_keep_alive_requests: 1000,
                ..ServerOptions::default()
            },
        )
        .expect("an ephemeral loop-back port is bindable");
        server.spawn()
    })
}

#[test]
fn every_analysis_endpoint_matches_the_cli_in_every_format() {
    let addr = server().addr();
    for id in AnalysisId::ALL {
        for format in Format::ALL {
            let cli = osdiv(&[id.name(), "--format", format.name()]);
            let http = loadgen::get(
                addr,
                &format!("/v1/analyses/{}?format={}", id.name(), format.name()),
            )
            .unwrap();
            assert_eq!(http.status, 200, "{id} {format}");
            assert_eq!(
                http.body_string(),
                cli,
                "GET /v1/analyses/{id}?format={format} differs from `osdiv {id} --format {format}`"
            );
        }
    }
}

#[test]
fn the_report_endpoint_matches_the_cli_report() {
    let addr = server().addr();
    for format in Format::ALL {
        let cli = osdiv(&["report", "--format", format.name()]);
        let http = loadgen::get(addr, &format!("/v1/report?format={}", format.name())).unwrap();
        assert_eq!(http.status, 200);
        assert_eq!(http.body_string(), cli, "report format {format}");
    }
}

#[test]
fn parameterized_requests_match_parameterized_cli_flags() {
    let addr = server().addr();
    let cli = osdiv(&[
        "temporal",
        "--first-year",
        "2000",
        "--last-year",
        "2005",
        "--format",
        "csv",
    ]);
    let http = loadgen::get(
        addr,
        "/v1/analyses/temporal?first_year=2000&last_year=2005&format=csv",
    )
    .unwrap();
    assert_eq!(http.body_string(), cli);

    let cli = osdiv(&[
        "kway",
        "--profile",
        "isolated",
        "--max-k",
        "4",
        "--format",
        "json",
    ]);
    let http = loadgen::get(
        addr,
        "/v1/analyses/kway?profile=isolated&max_k=4&format=json",
    )
    .unwrap();
    assert_eq!(http.body_string(), cli);

    let cli = osdiv(&[
        "split",
        "--oses",
        "debian,redhat,openbsd",
        "--format",
        "csv",
    ]);
    let http = loadgen::get(
        addr,
        "/v1/analyses/split?oses=debian,redhat,openbsd&format=csv",
    )
    .unwrap();
    assert_eq!(http.body_string(), cli);
}

#[test]
fn default_dataset_urls_render_byte_identical_to_the_cli_with_and_without_the_param() {
    // The multi-dataset registry must not perturb the single-dataset URLs:
    // with or without `?dataset=default`, every route still serves exactly
    // the CLI's bytes for the default seed (the PR 3 contract).
    let addr = server().addr();
    for (id, format) in [("validity", "json"), ("pairwise", "csv"), ("kway", "text")] {
        let cli = osdiv(&[id, "--format", format]);
        let implicit = loadgen::get(addr, &format!("/v1/analyses/{id}?format={format}")).unwrap();
        let explicit = loadgen::get(
            addr,
            &format!("/v1/analyses/{id}?format={format}&dataset=default"),
        )
        .unwrap();
        assert_eq!(implicit.body_string(), cli, "{id} {format} implicit");
        assert_eq!(explicit.body_string(), cli, "{id} {format} explicit");
        assert_eq!(
            implicit.header("etag"),
            explicit.header("etag"),
            "{id} {format}: one cache entry, one ETag"
        );
    }
}

#[test]
fn the_analyses_listing_matches_osdiv_list_in_machine_formats() {
    let addr = server().addr();
    // `osdiv list --format text` prints the bare table (historical CLI
    // layout); the machine formats go through the same section renderers
    // as the server.
    for format in [Format::Csv, Format::Json] {
        let cli = osdiv(&["list", "--format", format.name()]);
        let http = loadgen::get(addr, &format!("/v1/analyses?format={}", format.name())).unwrap();
        assert_eq!(http.body_string(), cli, "list format {format}");
    }
}
