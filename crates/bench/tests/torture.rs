//! Crash-consistency torture harness.
//!
//! Records every filesystem mutation a realistic tenant workload makes
//! through [`ChaosVfs`], then simulates a crash at *every* point in that
//! history: each operation prefix — plus torn byte-cuts inside every
//! whole-file write and journal append — is replayed into a fresh
//! directory and recovered cold. The invariants, for every crash image:
//!
//! * recovery never errors (torn journals are truncated, orphans are
//!   replayed or discarded, never fatal);
//! * every surviving `.osdv` snapshot is byte-identical to a state the
//!   workload actually committed — old or new, never a hybrid;
//! * the pre-existing tenant always loads and serves a byte-identical
//!   report for either its old or its new contents.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use nvd_feed::FeedWriter;
use nvd_model::{CveId, OsDistribution, VulnerabilityEntry};
use osdiv_core::{Format, Study};
use osdiv_registry::{
    ChaosVfs, DatasetSource, Durability, FeedIngester, IngestBudget, RegistryOptions,
    StudyRegistry, TenantStore, VfsOp,
};

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("osdiv-torture-{tag}-{}-{n}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn feed(entries: usize, year: u16) -> String {
    let entries: Vec<_> = (0..entries)
        .map(|i| {
            VulnerabilityEntry::builder(CveId::new(year, 100 + i as u32))
                .summary(format!("Stack overflow number {i} in the RPC daemon"))
                .affects_os(if i % 2 == 0 {
                    OsDistribution::Debian
                } else {
                    OsDistribution::Solaris
                })
                .build()
                .unwrap()
        })
        .collect();
    FeedWriter::new().write_to_string(&entries).unwrap()
}

fn ingest(xml: &str) -> (Arc<Study>, DatasetSource) {
    let mut ingester = FeedIngester::new(IngestBudget::default());
    ingester.push(xml.as_bytes()).unwrap();
    let outcome = ingester.finish().unwrap();
    let source = DatasetSource::Ingested {
        entries: outcome.entries,
        skipped: outcome.skipped,
        feed_bytes: outcome.feed_bytes,
    };
    (Arc::new(outcome.into_study()), source)
}

/// Everything the torture run needs to judge a crash image: the recorded
/// operation trace plus the committed byte-states each snapshot may
/// legally hold.
struct Recording {
    src: PathBuf,
    trace: Vec<VfsOp>,
    /// Files present before the traced workload began (the baseline a
    /// crash image starts from).
    baseline: Vec<(String, Vec<u8>)>,
    /// `keep.osdv` before and after the traced overwrite.
    keep_states: [Vec<u8>; 2],
    /// JSON reports matching `keep_states`.
    keep_reports: [String; 2],
    /// `fresh.osdv` once committed (it does not exist in the baseline).
    fresh_state: Vec<u8>,
}

/// Runs the workload under [`ChaosVfs`] and captures the trace:
///
/// 1. (untraced) save tenant `keep` — the pre-state;
/// 2. journal a streaming `PUT` for new tenant `fresh` (create + two
///    record appends), snapshot it, retire the journal;
/// 3. overwrite `keep`'s snapshot with new contents — the post-state.
fn record(durability: Durability) -> Recording {
    let src = temp_dir("src");
    let keep_old_xml = feed(12, 2004);
    let keep_new_xml = feed(16, 2005);
    let fresh_xml = feed(8, 2006);

    // Pre-state, written outside the trace: crash images start from here.
    let (keep_old, keep_old_source) = ingest(&keep_old_xml);
    {
        let store = TenantStore::open_durable(&src, durability).unwrap();
        store.save("keep", &keep_old, &keep_old_source).unwrap();
    }
    let baseline = snapshot_files(&src);
    let pre_bytes = fs::read(src.join("keep.osdv")).unwrap();
    let pre_report = keep_old.report(Format::Json).unwrap();

    // The traced workload.
    let chaos = ChaosVfs::new();
    let store = TenantStore::open_with(&src, durability, Arc::new(chaos.clone())).unwrap();

    let (fresh, fresh_source) = ingest(&fresh_xml);
    let mut journal = store.journal("fresh").unwrap();
    let cut = fresh_xml.len() / 2;
    journal
        .append(fresh_xml.as_bytes().get(..cut).unwrap())
        .unwrap();
    journal
        .append(fresh_xml.as_bytes().get(cut..).unwrap())
        .unwrap();
    store.save("fresh", &fresh, &fresh_source).unwrap();
    journal.finish().unwrap();

    let (keep_new, keep_new_source) = ingest(&keep_new_xml);
    store.save("keep", &keep_new, &keep_new_source).unwrap();

    let trace = chaos.trace();
    assert!(
        trace.len() >= 6,
        "the workload must record a meaningful trace, got {} ops",
        trace.len()
    );

    Recording {
        trace,
        baseline,
        keep_states: [pre_bytes, fs::read(src.join("keep.osdv")).unwrap()],
        keep_reports: [pre_report, keep_new.report(Format::Json).unwrap()],
        fresh_state: fs::read(src.join("fresh.osdv")).unwrap(),
        src,
    }
}

fn snapshot_files(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files = Vec::new();
    for entry in fs::read_dir(dir).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name().into_string().unwrap();
        files.push((name, fs::read(entry.path()).unwrap()));
    }
    files
}

/// Applies one recorded operation to the crash-image directory,
/// optionally tearing it after `cut` bytes (byte-carrying ops only).
fn apply(image: &Path, src: &Path, op: &VfsOp, cut: Option<usize>) {
    let map = |p: &Path| image.join(p.strip_prefix(src).expect("op path outside the source dir"));
    match op {
        VfsOp::Write { path, bytes } => {
            let keep = cut.unwrap_or(bytes.len()).min(bytes.len());
            fs::write(map(path), bytes.get(..keep).unwrap()).unwrap();
        }
        VfsOp::Rename { from, to } => fs::rename(map(from), map(to)).unwrap(),
        VfsOp::Remove { path } => {
            let _ = fs::remove_file(map(path));
        }
        VfsOp::Create { path } => fs::write(map(path), b"").unwrap(),
        VfsOp::Append { path, bytes } => {
            let keep = cut.unwrap_or(bytes.len()).min(bytes.len());
            let mut file = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(map(path))
                .unwrap();
            file.write_all(bytes.get(..keep).unwrap()).unwrap();
        }
        // A crash loses nothing a sync already made durable; replay-wise
        // both are no-ops on the image.
        VfsOp::SyncFile { .. } | VfsOp::SyncDir { .. } => {}
    }
}

/// Builds the crash image for `trace[..prefix]` (plus an optional torn
/// cut of `trace[prefix]`) and asserts every recovery invariant.
fn check_crash_image(recording: &Recording, prefix: usize, cut: Option<usize>) {
    let label = match cut {
        Some(cut) => format!("prefix {prefix} + {cut}-byte tear"),
        None => format!("prefix {prefix}"),
    };
    let image = temp_dir("image");
    fs::create_dir_all(&image).unwrap();
    for (name, bytes) in &recording.baseline {
        fs::write(image.join(name), bytes).unwrap();
    }
    for op in recording.trace.get(..prefix).unwrap() {
        apply(&image, &recording.src, op, None);
    }
    if let Some(cut) = cut {
        apply(
            &image,
            &recording.src,
            recording.trace.get(prefix).unwrap(),
            Some(cut),
        );
    }

    // Invariant: every surviving snapshot is a committed state, bytewise.
    for (name, bytes) in snapshot_files(&image) {
        let ok = match name.as_str() {
            "keep.osdv" => recording.keep_states.contains(&bytes),
            "fresh.osdv" => recording.fresh_state == bytes,
            // Torn temp files and journals are expected debris; recovery
            // must cope with them, byte equality is not required.
            _ => true,
        };
        assert!(
            ok,
            "{label}: {name} holds bytes no committed state ever held"
        );
    }

    // Invariant: cold recovery never errors.
    let store = Arc::new(TenantStore::open(&image).unwrap());
    let registry =
        StudyRegistry::new(RegistryOptions::default()).with_persistence(Arc::clone(&store));
    let recovery = registry.recover(&IngestBudget::default());
    assert!(
        recovery.errors.is_empty(),
        "{label}: recovery reported errors: {:?}",
        recovery.errors
    );

    // Invariant: the pre-existing tenant always loads and serves either
    // its old or its new report, byte-identically.
    let loaded = store
        .load("keep")
        .unwrap_or_else(|error| panic!("{label}: keep failed to load: {error}"));
    let report = loaded.study.report(Format::Json).unwrap();
    assert!(
        recording.keep_reports.contains(&report),
        "{label}: keep served a report matching neither committed state"
    );

    let _ = fs::remove_dir_all(&image);
}

fn torture(durability: Durability) {
    let recording = record(durability);
    let ops = recording.trace.len();
    for prefix in 0..=ops {
        check_crash_image(&recording, prefix, None);
        // Tear the next operation mid-write where it carries bytes.
        let torn_len = match recording.trace.get(prefix) {
            Some(VfsOp::Write { bytes, .. }) | Some(VfsOp::Append { bytes, .. }) => bytes.len(),
            _ => 0,
        };
        if torn_len > 1 {
            let mut cuts = vec![1, torn_len / 2, torn_len - 1];
            cuts.dedup();
            for cut in cuts {
                check_crash_image(&recording, prefix, Some(cut));
            }
        }
    }
    let _ = fs::remove_dir_all(&recording.src);
}

#[test]
fn every_crash_prefix_recovers_under_rename_durability() {
    torture(Durability::Rename);
}

#[test]
fn every_crash_prefix_recovers_under_full_durability() {
    torture(Durability::Full);
}
