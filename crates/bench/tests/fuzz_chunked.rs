//! Always-on fuzz harness for the chunked transfer-coding decoder. The
//! decoder must never panic, must produce identical output however the
//! input is sliced, and its work counter must stay linear in the bytes
//! fed — the complexity contract `complexity_guard.rs` pins at scale.

use osdiv_serve::http::ChunkedDecoder;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::path::PathBuf;

fn corpus(dir: &str) -> Vec<(String, Vec<u8>)> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/corpora")
        .join(dir);
    let mut paths: Vec<_> = std::fs::read_dir(&root)
        .unwrap_or_else(|e| panic!("corpus {} unreadable: {e}", root.display()))
        .map(|entry| entry.expect("corpus entry").path())
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "corpus {dir} must not be empty");
    paths
        .into_iter()
        .map(|path| {
            let name = path
                .file_name()
                .unwrap_or_default()
                .to_string_lossy()
                .into_owned();
            let bytes = std::fs::read(&path).expect("corpus file readable");
            (name, bytes)
        })
        .collect()
}

fn mutate(seed: &[u8], rng: &mut StdRng) -> Vec<u8> {
    let mut bytes = seed.to_vec();
    for _ in 0..rng.gen_range(1..=6usize) {
        match rng.gen_range(0u32..3) {
            0 if !bytes.is_empty() => {
                let i = rng.gen_range(0..bytes.len());
                bytes[i] = rng.gen_range(0u32..=255) as u8;
            }
            1 => {
                let i = rng.gen_range(0..=bytes.len());
                bytes.insert(i, rng.gen_range(0u32..=255) as u8);
            }
            _ if !bytes.is_empty() => {
                let i = rng.gen_range(0..bytes.len());
                bytes.remove(i);
            }
            _ => {}
        }
    }
    bytes
}

/// Decodes `input` in `piece`-byte feeds. Returns the decoded payload and
/// an outcome tag, or the violation; also asserts the linear-work bound.
fn drive(input: &[u8], piece: usize) -> Result<(Vec<u8>, bool), String> {
    let mut decoder = ChunkedDecoder::new();
    let mut sink = Vec::new();
    let mut fed = 0u64;
    for chunk in input.chunks(piece.max(1)) {
        fed += chunk.len() as u64;
        let mut consumed = 0;
        while consumed < chunk.len() && !decoder.is_done() {
            match decoder.decode(&chunk[consumed..], &mut sink) {
                Ok(0) => break,
                Ok(n) => consumed += n,
                Err(violation) => return Err(format!("{violation:?}")),
            }
        }
        // The decoder never examines more than a constant per byte fed
        // (re-checks at chunk-boundary CRLFs are bounded).
        assert!(
            decoder.work() <= 2 * fed + 16,
            "work {} superlinear in fed {fed}",
            decoder.work()
        );
        if decoder.is_done() {
            break;
        }
    }
    Ok((sink, decoder.is_done()))
}

#[test]
fn corpus_streams_never_panic_and_slice_consistently() {
    for (name, bytes) in corpus("chunked") {
        let whole = drive(&bytes, usize::MAX);
        for piece in [1, 2, 3, 5] {
            assert_eq!(
                drive(&bytes, piece),
                whole,
                "{name} differs at piece={piece}"
            );
        }
        if let Ok((payload, _)) = &whole {
            assert!(
                payload.len() <= bytes.len(),
                "{name}: decoded payload cannot exceed the wire bytes"
            );
        }
    }
}

#[test]
fn mutated_streams_never_panic() {
    let seeds = corpus("chunked");
    let mut rng = StdRng::seed_from_u64(0x05D1_FBAD_C0DE_0002);
    for round in 0..150 {
        let (_, seed) = &seeds[round % seeds.len()];
        let mutant = mutate(seed, &mut rng);
        let whole = drive(&mutant, usize::MAX);
        assert_eq!(
            drive(&mutant, 1),
            whole,
            "slicing must not change the outcome"
        );
    }
}
