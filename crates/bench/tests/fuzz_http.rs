//! Always-on fuzz harness for the HTTP request-head parser: every corpus
//! file plus seeded deterministic mutations of it, fed whole and split at
//! adversarial boundaries. The parser must never panic — malformed input
//! is a `HttpViolation`, not a crash — and must behave identically no
//! matter how the bytes are sliced.

use osdiv_serve::http::RequestParser;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::path::PathBuf;

fn corpus(dir: &str) -> Vec<(String, Vec<u8>)> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/corpora")
        .join(dir);
    let mut paths: Vec<_> = std::fs::read_dir(&root)
        .unwrap_or_else(|e| panic!("corpus {} unreadable: {e}", root.display()))
        .map(|entry| entry.expect("corpus entry").path())
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "corpus {dir} must not be empty");
    paths
        .into_iter()
        .map(|path| {
            let name = path
                .file_name()
                .unwrap_or_default()
                .to_string_lossy()
                .into_owned();
            let bytes = std::fs::read(&path).expect("corpus file readable");
            (name, bytes)
        })
        .collect()
}

fn mutate(seed: &[u8], rng: &mut StdRng) -> Vec<u8> {
    let mut bytes = seed.to_vec();
    for _ in 0..rng.gen_range(1..=8usize) {
        match rng.gen_range(0u32..4) {
            0 if !bytes.is_empty() => {
                let i = rng.gen_range(0..bytes.len());
                bytes[i] = rng.gen_range(0u32..=255) as u8;
            }
            1 => {
                let i = rng.gen_range(0..=bytes.len());
                bytes.insert(i, rng.gen_range(0u32..=255) as u8);
            }
            2 if !bytes.is_empty() => {
                let i = rng.gen_range(0..bytes.len());
                bytes.remove(i);
            }
            _ => {
                let keep = bytes.len() / 2;
                bytes.truncate(keep);
            }
        }
    }
    bytes
}

/// Feeds `input` to a fresh parser, optionally in `piece`-byte slices.
/// Returns a coarse outcome fingerprint for cross-slicing comparison.
fn drive(input: &[u8], piece: usize) -> String {
    let mut parser = RequestParser::new();
    for chunk in input.chunks(piece.max(1)) {
        match parser.feed(chunk) {
            Ok(Some(request)) => {
                return format!("parsed {} {}", request.method, request.path);
            }
            Ok(None) => continue,
            Err(violation) => return format!("violation {violation:?}"),
        }
    }
    "incomplete".to_string()
}

#[test]
fn corpus_heads_never_panic_and_slice_consistently() {
    for (name, bytes) in corpus("http") {
        let whole = drive(&bytes, usize::MAX);
        for piece in [1, 2, 3, 7] {
            assert_eq!(
                drive(&bytes, piece),
                whole,
                "{name} differs at piece={piece}"
            );
        }
    }
}

#[test]
fn mutated_heads_never_panic() {
    let seeds = corpus("http");
    let mut rng = StdRng::seed_from_u64(0x05D1_FBAD_C0DE_0001);
    for round in 0..120 {
        let (_, seed) = &seeds[round % seeds.len()];
        let mutant = mutate(seed, &mut rng);
        let whole = drive(&mutant, usize::MAX);
        let byte_wise = drive(&mutant, 1);
        assert_eq!(byte_wise, whole, "slicing must not change the outcome");
    }
}
