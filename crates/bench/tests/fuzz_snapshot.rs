//! Always-on fuzz harness for the binary decoders: OSDV snapshots
//! ([`Snapshot::from_bytes`] / `inspect` / `read_meta`), the row codec
//! ([`vulnstore::snapshot::decode_store`]), and journal replay through
//! [`TenantStore`]. Corrupt bytes are `Err`s (or, for the journal, a
//! trustworthy prefix) — never a panic.

use datagen::CalibratedGenerator;
use osdiv_core::snapshot::Snapshot;
use osdiv_core::StudyDataset;
use osdiv_registry::persist::TenantStore;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::path::PathBuf;

fn corpus(dir: &str) -> Vec<(String, Vec<u8>)> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/corpora")
        .join(dir);
    let mut paths: Vec<_> = std::fs::read_dir(&root)
        .unwrap_or_else(|e| panic!("corpus {} unreadable: {e}", root.display()))
        .map(|entry| entry.expect("corpus entry").path())
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "corpus {dir} must not be empty");
    paths
        .into_iter()
        .map(|path| {
            let name = path
                .file_name()
                .unwrap_or_default()
                .to_string_lossy()
                .into_owned();
            let bytes = std::fs::read(&path).expect("corpus file readable");
            (name, bytes)
        })
        .collect()
}

fn decode_all(bytes: &[u8]) {
    let _ = Snapshot::from_bytes(bytes);
    let _ = Snapshot::inspect(bytes);
    let _ = Snapshot::read_meta(bytes);
    let _ = vulnstore::snapshot::decode_store(bytes);
}

#[test]
fn corpus_blobs_never_panic() {
    for (name, bytes) in corpus("snapshots") {
        decode_all(&bytes);
        // Also as a journal file: replay reports a prefix, never panics.
        let dir =
            std::env::temp_dir().join(format!("osdiv-fuzz-journal-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let store = TenantStore::open(&dir).expect("tenant store opens");
        std::fs::write(store.journal_path("fuzz"), &bytes).expect("journal write");
        let _ = store.replay_journal("fuzz");
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn bit_flipped_valid_snapshots_never_panic() {
    // Start from a genuine snapshot so mutations explore deep decoder
    // states (section table, row codec, CRC mismatches), not just the
    // header checks.
    let dataset = StudyDataset::from_entries(CalibratedGenerator::new(7).generate().entries());
    let valid = Snapshot::to_bytes(&dataset, &[("origin".into(), "fuzz".into())]);
    assert!(Snapshot::from_bytes(&valid).is_ok(), "baseline round-trips");

    let mut rng = StdRng::seed_from_u64(0x05D1_FBAD_C0DE_0005);
    for _ in 0..200 {
        let mut mutant = valid.clone();
        match rng.gen_range(0u32..3) {
            0 => {
                let i = rng.gen_range(0..mutant.len());
                mutant[i] ^= 1 << rng.gen_range(0u32..8);
            }
            1 => {
                let keep = rng.gen_range(0..mutant.len());
                mutant.truncate(keep);
            }
            _ => {
                let i = rng.gen_range(0..mutant.len());
                let j = rng.gen_range(0..=8usize);
                for _ in 0..j {
                    mutant.insert(i, rng.gen_range(0u32..=255) as u8);
                }
            }
        }
        decode_all(&mutant);
    }
}

#[test]
fn truncations_at_every_interesting_boundary_never_panic() {
    let dataset = StudyDataset::from_entries(CalibratedGenerator::new(7).generate().entries());
    let valid = Snapshot::to_bytes(&dataset, &[]);
    // Every prefix of the header + section table, then sparse samples.
    for end in (0..64.min(valid.len())).chain((64..valid.len()).step_by(97)) {
        decode_all(valid.get(..end).unwrap_or(&valid));
    }
}
