//! Complexity-guard tests: counter-instrumented work metrics asserted at
//! two scales, so an accidentally quadratic parse loop fails the suite
//! instead of shipping as a silent slowdown. The pinned regression class
//! is the quadratic entry-boundary rescan fixed in the parallel-parsing
//! PR: `quadratic_boundary_rescans_would_fail_this_harness` re-simulates
//! it and proves the same bound that the real scanner satisfies rejects
//! the quadratic one.
//!
//! Work counters, not wall clocks: timing is noisy under CI load, byte
//! counts are exact and deterministic.

use nvd_feed::FeedWriter;
use nvd_model::{CveId, OsDistribution, VulnerabilityEntry};
use osdiv_core::{FlightRecorder, SpanKind, SpanRecord};
use osdiv_registry::persist::TenantStore;
use osdiv_registry::{FeedIngester, IngestBudget};
use osdiv_serve::http::ChunkedDecoder;

/// Linear-work bound shared by the real scanner assertions and the
/// quadratic re-simulation: scanning a feed pushed in small chunks may
/// examine each byte only a bounded number of times.
const SCAN_WORK_FACTOR: u64 = 6;

fn feed_xml(entries: u32) -> Vec<u8> {
    let entries: Vec<_> = (0..entries)
        .map(|i| {
            VulnerabilityEntry::builder(CveId::new(1998 + (i % 12) as u16, i + 1))
                .summary(format!(
                    "Privilege escalation number {i} through the local daemon"
                ))
                .affects_os(if i % 2 == 0 {
                    OsDistribution::Debian
                } else {
                    OsDistribution::OpenBsd
                })
                .build()
                .expect("builder input is valid")
        })
        .collect();
    FeedWriter::new()
        .write_to_string(&entries)
        .expect("writer output is valid")
        .into_bytes()
}

/// Pushes `xml` into a fresh inline ingester in `piece`-byte chunks and
/// returns the boundary scanner's work counter.
fn scan_work(xml: &[u8], piece: usize) -> u64 {
    let mut ingester = FeedIngester::with_workers(IngestBudget::default(), 0);
    for chunk in xml.chunks(piece) {
        ingester.push(chunk).expect("valid feed ingests");
    }
    let work = ingester.scan_work();
    ingester.finish().expect("valid feed finishes");
    work
}

#[test]
fn chunked_decoding_work_is_linear_at_byte_granularity() {
    // Worst case for a rescanning decoder: the body arrives one byte at
    // a time. The work counter counts bytes examined, so any internal
    // re-examination shows up directly.
    fn wire_and_work(payload_bytes: usize) -> (u64, u64) {
        let mut wire = Vec::new();
        for chunk in vec![0x61u8; payload_bytes].chunks(16) {
            wire.extend_from_slice(format!("{:x}\r\n", chunk.len()).as_bytes());
            wire.extend_from_slice(chunk);
            wire.extend_from_slice(b"\r\n");
        }
        wire.extend_from_slice(b"0\r\n\r\n");
        let mut decoder = ChunkedDecoder::new();
        let mut sink = Vec::new();
        for byte in &wire {
            let consumed = decoder
                .decode(std::slice::from_ref(byte), &mut sink)
                .expect("well-formed chunked body");
            assert_eq!(consumed, 1);
        }
        assert!(decoder.is_done());
        assert_eq!(sink.len(), payload_bytes);
        (wire.len() as u64, decoder.work())
    }

    let (small_wire, small_work) = wire_and_work(2_000);
    let (large_wire, large_work) = wire_and_work(16_000);
    assert!(
        small_work <= 2 * small_wire && large_work <= 2 * large_wire,
        "decode work must stay linear in wire bytes: \
         {small_work}/{small_wire} and {large_work}/{large_wire}"
    );
    // Growth check: ~8x the input must cost ~8x the work, not ~64x.
    assert!(
        large_work * small_wire <= 2 * small_work * large_wire,
        "decode work grows superlinearly: {small_work}@{small_wire} -> {large_work}@{large_wire}"
    );
}

#[test]
fn feed_boundary_scan_work_is_linear_at_any_chunking() {
    let small = feed_xml(40);
    let large = feed_xml(240);
    for piece in [7, 64, 1024] {
        let small_work = scan_work(&small, piece);
        let large_work = scan_work(&large, piece);
        assert!(
            small_work <= SCAN_WORK_FACTOR * small.len() as u64,
            "scan work {small_work} superlinear in {} bytes (piece={piece})",
            small.len()
        );
        assert!(
            large_work <= SCAN_WORK_FACTOR * large.len() as u64,
            "scan work {large_work} superlinear in {} bytes (piece={piece})",
            large.len()
        );
        // Growth check at ~6x the feed size.
        assert!(
            large_work * (small.len() as u64) <= 2 * small_work * (large.len() as u64),
            "scan work grows superlinearly at piece={piece}: \
             {small_work}@{} -> {large_work}@{}",
            small.len(),
            large.len()
        );
    }
}

#[test]
fn quadratic_boundary_rescans_would_fail_this_harness() {
    // Re-simulation of the regression this harness exists to catch: a
    // boundary scanner that forgets its progress and rescans the whole
    // buffered entry prefix on every push (the pre-parallel-parsing bug).
    // Its work counter must violate the exact bound the real scanner
    // satisfies above — proving the bound has teeth.
    fn quadratic_scan_work(xml: &[u8], piece: usize) -> u64 {
        let mut work = 0u64;
        let mut buffered = 0usize;
        for chunk in xml.chunks(piece) {
            buffered += chunk.len();
            // No carried resume offset: every push walks the buffer from
            // its start. (The real scanner only walks the new bytes.)
            work += buffered as u64;
            // Crude entry-boundary bookkeeping: once a close tag is
            // plausible the buffer drains, like the real carver.
            if buffered > 400 {
                buffered = 0;
            }
        }
        work
    }

    let xml = feed_xml(240);
    let piece = 7;
    let real = scan_work(&xml, piece);
    let quadratic = quadratic_scan_work(&xml, piece);
    let bound = SCAN_WORK_FACTOR * xml.len() as u64;
    assert!(real <= bound, "the real scanner passes its own bound");
    assert!(
        quadratic > bound,
        "the quadratic rescan ({quadratic}) must exceed the linear bound ({bound}) \
         the suite enforces — otherwise this harness could not catch the regression"
    );
}

#[test]
fn journal_replay_work_is_linear_in_file_size() {
    fn replay_work(records: usize) -> (u64, u64) {
        let dir = std::env::temp_dir().join(format!(
            "osdiv-complexity-journal-{}-{records}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let store = TenantStore::open(&dir).expect("tenant store opens");
        let mut writer = store.journal("tenant").expect("journal opens");
        for i in 0..records {
            writer
                .append(format!("<entry id=\"CVE-2004-{i:04}\"/>").as_bytes())
                .expect("journal append");
        }
        // Drop (don't `finish`) the writer: finish deletes the journal;
        // dropping models the crash the journal exists to survive.
        drop(writer);
        let file_bytes = std::fs::metadata(store.journal_path("tenant"))
            .expect("journal exists")
            .len();
        let replay = store.replay_journal("tenant").expect("journal replays");
        assert_eq!(replay.records, records);
        assert!(!replay.truncated_tail);
        std::fs::remove_dir_all(&dir).ok();
        (file_bytes, replay.work)
    }

    let (small_bytes, small_work) = replay_work(50);
    let (large_bytes, large_work) = replay_work(500);
    // Replay examines each journal byte exactly once.
    assert!(small_work <= small_bytes && large_work <= large_bytes);
    assert!(
        large_work * small_bytes <= 2 * small_work * large_bytes,
        "replay work grows superlinearly: {small_work}@{small_bytes} -> {large_work}@{large_bytes}"
    );
}

#[test]
fn span_dump_work_is_bounded_by_the_ring_not_the_span_history() {
    // `/v1/debug/spans` and `osdiv debug spans` must answer in O(ring
    // capacity): dumping after 100x more recorded spans costs exactly the
    // same slot walk, because the ring forgets everything it overwrote.
    fn dump_work(capacity: usize, spans: u64) -> u64 {
        let recorder = FlightRecorder::with_capacity(capacity);
        for _ in 0..spans {
            let id = recorder.next_span_id();
            recorder.record(SpanRecord {
                id,
                parent: 0,
                trace: 0,
                kind: SpanKind::Render,
                tid: 0,
                start_us: id,
                dur_us: 1,
                label: [0; osdiv_core::obs::LABEL_BYTES],
            });
        }
        let snapshot = recorder.snapshot();
        assert_eq!(snapshot.total, spans);
        snapshot.work
    }

    let capacity = 64;
    let few = dump_work(capacity, capacity as u64 * 2);
    let many = dump_work(capacity, capacity as u64 * 200);
    assert_eq!(
        few, many,
        "snapshot work must not grow with the number of spans ever recorded"
    );
    assert_eq!(
        few, capacity as u64,
        "a snapshot examines each ring slot exactly once"
    );
}
