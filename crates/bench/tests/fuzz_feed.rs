//! Always-on fuzz harness for the NVD feed path: the XML reader
//! ([`FeedReader`]) and the streaming boundary scanner ([`FeedIngester`])
//! over malformed corpus feeds and seeded mutations of a valid feed.
//! Malformed XML is a `FeedError` (or a skip, in lenient mode) — never a
//! panic — and the streaming ingestion must agree with the one-shot one
//! on every input, valid or not.

use nvd_feed::{FeedReader, FeedWriter};
use nvd_model::{CveId, OsDistribution, VulnerabilityEntry};
use osdiv_registry::{FeedIngester, IngestBudget};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::path::PathBuf;

fn corpus(dir: &str) -> Vec<(String, Vec<u8>)> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/corpora")
        .join(dir);
    let mut paths: Vec<_> = std::fs::read_dir(&root)
        .unwrap_or_else(|e| panic!("corpus {} unreadable: {e}", root.display()))
        .map(|entry| entry.expect("corpus entry").path())
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "corpus {dir} must not be empty");
    paths
        .into_iter()
        .map(|path| {
            let name = path
                .file_name()
                .unwrap_or_default()
                .to_string_lossy()
                .into_owned();
            let bytes = std::fs::read(&path).expect("corpus file readable");
            (name, bytes)
        })
        .collect()
}

fn valid_feed(entries: u32) -> Vec<u8> {
    let entries: Vec<_> = (0..entries)
        .map(|i| {
            VulnerabilityEntry::builder(CveId::new(2000 + (i % 8) as u16, i + 1))
                .summary(format!("Denial of service number {i} in the scheduler"))
                .affects_os(if i % 2 == 0 {
                    OsDistribution::Debian
                } else {
                    OsDistribution::Solaris
                })
                .build()
                .expect("builder input is valid")
        })
        .collect();
    FeedWriter::new()
        .write_to_string(&entries)
        .expect("writer output is valid")
        .into_bytes()
}

fn mutate(seed: &[u8], rng: &mut StdRng) -> Vec<u8> {
    let mut bytes = seed.to_vec();
    for _ in 0..rng.gen_range(1..=10usize) {
        match rng.gen_range(0u32..4) {
            0 if !bytes.is_empty() => {
                let i = rng.gen_range(0..bytes.len());
                bytes[i] = rng.gen_range(0u32..=255) as u8;
            }
            1 => {
                let i = rng.gen_range(0..=bytes.len());
                // Bias insertions toward XML-significant bytes.
                let byte = *[b'<', b'>', b'&', b'"', b']', 0xFF]
                    .get(rng.gen_range(0usize..6))
                    .unwrap_or(&b'<');
                bytes.insert(i, byte);
            }
            2 if !bytes.is_empty() => {
                let i = rng.gen_range(0..bytes.len());
                bytes.remove(i);
            }
            _ => {
                let keep = bytes.len().saturating_sub(rng.gen_range(0..=32usize));
                bytes.truncate(keep);
            }
        }
    }
    bytes
}

/// One-shot strict read: the outcome fingerprint for comparisons.
fn read_oneshot(bytes: &[u8]) -> String {
    let Ok(xml) = std::str::from_utf8(bytes) else {
        return "not-utf8".to_string();
    };
    match FeedReader::new().read_from_str(xml) {
        Ok(entries) => format!("ok {}", entries.len()),
        Err(error) => format!("err {error}"),
    }
}

/// Streaming ingestion in `piece`-byte pushes; inline parsing (0 workers)
/// keeps error surfacing synchronous and deterministic.
fn ingest_streamed(bytes: &[u8], piece: usize) -> String {
    let mut ingester = FeedIngester::with_workers(IngestBudget::default(), 0);
    for chunk in bytes.chunks(piece.max(1)) {
        if let Err(error) = ingester.push(chunk) {
            return format!("push-err {error}");
        }
    }
    match ingester.finish() {
        Ok(outcome) => format!("ok {}/{}", outcome.entries, outcome.skipped),
        Err(error) => format!("finish-err {error}"),
    }
}

#[test]
fn corpus_feeds_never_panic() {
    for (name, bytes) in corpus("feeds") {
        let _ = read_oneshot(&bytes);
        let whole = ingest_streamed(&bytes, usize::MAX);
        for piece in [1, 7, 64] {
            assert_eq!(
                ingest_streamed(&bytes, piece),
                whole,
                "{name}: stream slicing changed the outcome"
            );
        }
    }
}

#[test]
fn mutated_feeds_never_panic_and_stream_consistently() {
    let base = valid_feed(6);
    let mut rng = StdRng::seed_from_u64(0x05D1_FBAD_C0DE_0003);
    for _ in 0..60 {
        let mutant = mutate(&base, &mut rng);
        let _ = read_oneshot(&mutant);
        let whole = ingest_streamed(&mutant, usize::MAX);
        assert_eq!(
            ingest_streamed(&mutant, 13),
            whole,
            "stream slicing changed the outcome"
        );
    }
}

#[test]
fn pipelined_ingestion_agrees_with_inline_on_malformed_input() {
    // The worker pool re-orders parses; errors must still surface
    // first-in-feed-order, i.e. identically to inline parsing.
    let mut rng = StdRng::seed_from_u64(0x05D1_FBAD_C0DE_0004);
    let base = valid_feed(10);
    for _ in 0..20 {
        let mutant = mutate(&base, &mut rng);
        let inline = ingest_streamed(&mutant, 97);
        let mut pipelined = FeedIngester::with_workers(IngestBudget::default(), 2);
        let piped = (|| {
            for chunk in mutant.chunks(97) {
                if let Err(error) = pipelined.push(chunk) {
                    return format!("push-err {error}");
                }
            }
            match pipelined.finish() {
                Ok(outcome) => format!("ok {}/{}", outcome.entries, outcome.skipped),
                Err(error) => format!("finish-err {error}"),
            }
        })();
        // A push error may surface on a later push than inline (the
        // pipeline settles asynchronously), but the error itself and the
        // success outcomes must match.
        assert_eq!(
            piped.replace("finish-err", "push-err"),
            inline.replace("finish-err", "push-err"),
            "pipelined and inline ingestion disagree"
        );
    }
}
