//! Minimal calendar date used for vulnerability publication dates.
//!
//! The study only needs year-level resolution (Figure 2 and Table V group by
//! year), but NVD feeds carry full `YYYY-MM-DD` timestamps, so the model
//! stores the complete date. A dedicated type is used instead of an external
//! date-time crate to stay within the allowed dependency set.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::ModelError;

/// A calendar date (`YYYY-MM-DD`), ordered chronologically.
///
/// # Example
///
/// ```
/// use nvd_model::Date;
///
/// # fn main() -> Result<(), nvd_model::ModelError> {
/// let d: Date = "2008-07-08".parse()?;
/// assert_eq!(d.year(), 2008);
/// assert!(d < Date::new(2010, 9, 30)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Date {
    year: u16,
    month: u8,
    day: u8,
}

/// Number of days in `month` of `year`, accounting for leap years.
fn days_in_month(year: u16, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            let leap = (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
            if leap {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

impl Date {
    /// Creates a date, validating that the month and day are in range.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ParseDate`] if the month is not in `1..=12` or
    /// the day is not valid for the given month/year.
    pub fn new(year: u16, month: u8, day: u8) -> Result<Self, ModelError> {
        let err = |reason| ModelError::ParseDate {
            input: format!("{year:04}-{month:02}-{day:02}"),
            reason,
        };
        if !(1..=12).contains(&month) {
            return Err(err("month out of range"));
        }
        if day == 0 || day > days_in_month(year, month) {
            return Err(err("day out of range"));
        }
        Ok(Date { year, month, day })
    }

    /// Creates the first day of `year` (`year-01-01`).
    ///
    /// Useful when only year-level resolution is available, e.g. when
    /// synthesizing entries from the per-year histograms of Figure 2.
    pub fn from_year(year: u16) -> Self {
        Date {
            year,
            month: 1,
            day: 1,
        }
    }

    /// The year component.
    pub fn year(&self) -> u16 {
        self.year
    }

    /// The month component (1–12).
    pub fn month(&self) -> u8 {
        self.month
    }

    /// The day-of-month component (1–31).
    pub fn day(&self) -> u8 {
        self.day
    }

    /// Days since 0000-03-01 (an internal epoch); used to compute intervals.
    fn rata_die(&self) -> i64 {
        // Algorithm adapted from Howard Hinnant's `days_from_civil`.
        let y = i64::from(self.year) - i64::from(self.month <= 2);
        let era = y.div_euclid(400);
        let yoe = y - era * 400;
        let mp = (i64::from(self.month) + 9) % 12;
        let doy = (153 * mp + 2) / 5 + i64::from(self.day) - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        era * 146_097 + doe - 719_468
    }

    /// Number of whole days from `earlier` to `self` (negative if `self` is
    /// before `earlier`).
    ///
    /// # Example
    ///
    /// ```
    /// use nvd_model::Date;
    /// # fn main() -> Result<(), nvd_model::ModelError> {
    /// let a = Date::new(2006, 1, 1)?;
    /// let b = Date::new(2006, 1, 31)?;
    /// assert_eq!(b.days_since(&a), 30);
    /// # Ok(())
    /// # }
    /// ```
    pub fn days_since(&self, earlier: &Date) -> i64 {
        self.rata_die() - earlier.rata_die()
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

impl FromStr for Date {
    type Err = ModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |reason| ModelError::ParseDate {
            input: s.to_string(),
            reason,
        };
        // Accept both plain dates and NVD timestamps such as
        // "2008-07-08T19:41:00.000-04:00"; everything after the date part is
        // ignored.
        let date_part = &s[..s.len().min(10)];
        let mut it = date_part.splitn(3, '-');
        let year = it
            .next()
            .filter(|p| p.len() == 4)
            .and_then(|p| p.parse::<u16>().ok())
            .ok_or_else(|| err("expected a four digit year"))?;
        let month = it
            .next()
            .and_then(|p| p.parse::<u8>().ok())
            .ok_or_else(|| err("expected a numeric month"))?;
        let day = it
            .next()
            .and_then(|p| p.parse::<u8>().ok())
            .ok_or_else(|| err("expected a numeric day"))?;
        Date::new(year, month, day).map_err(|_| err("month or day out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parse_plain_date() {
        let d: Date = "2008-07-08".parse().unwrap();
        assert_eq!((d.year(), d.month(), d.day()), (2008, 7, 8));
    }

    #[test]
    fn parse_nvd_timestamp() {
        let d: Date = "2008-07-08T19:41:00.000-04:00".parse().unwrap();
        assert_eq!((d.year(), d.month(), d.day()), (2008, 7, 8));
    }

    #[test]
    fn rejects_bad_month_and_day() {
        assert!(Date::new(2008, 13, 1).is_err());
        assert!(Date::new(2008, 0, 1).is_err());
        assert!(Date::new(2008, 2, 30).is_err());
        assert!(Date::new(2008, 4, 31).is_err());
    }

    #[test]
    fn leap_year_february() {
        assert!(Date::new(2008, 2, 29).is_ok());
        assert!(Date::new(2009, 2, 29).is_err());
        assert!(Date::new(2000, 2, 29).is_ok());
        assert!(Date::new(1900, 2, 29).is_err());
    }

    #[test]
    fn ordering_is_chronological() {
        let a = Date::new(2005, 12, 31).unwrap();
        let b = Date::new(2006, 1, 1).unwrap();
        assert!(a < b);
    }

    #[test]
    fn days_since_known_interval() {
        let a = Date::new(1994, 1, 1).unwrap();
        let b = Date::new(1995, 1, 1).unwrap();
        assert_eq!(b.days_since(&a), 365);
        let c = Date::new(2004, 1, 1).unwrap();
        let d = Date::new(2005, 1, 1).unwrap();
        assert_eq!(d.days_since(&c), 366); // 2004 is a leap year
    }

    #[test]
    fn from_year_is_january_first() {
        let d = Date::from_year(1994);
        assert_eq!(d.to_string(), "1994-01-01");
    }

    proptest! {
        #[test]
        fn roundtrip(year in 1990u16..2030, month in 1u8..=12, day in 1u8..=28) {
            let d = Date::new(year, month, day).unwrap();
            let parsed: Date = d.to_string().parse().unwrap();
            prop_assert_eq!(d, parsed);
        }

        #[test]
        fn ordering_matches_days_since(
            ya in 1990u16..2030, ma in 1u8..=12, da in 1u8..=28,
            yb in 1990u16..2030, mb in 1u8..=12, db in 1u8..=28,
        ) {
            let a = Date::new(ya, ma, da).unwrap();
            let b = Date::new(yb, mb, db).unwrap();
            prop_assert_eq!(a < b, b.days_since(&a) > 0);
            prop_assert_eq!(a == b, b.days_since(&a) == 0);
        }
    }
}
