//! Error type shared by the parsers in this crate.

use std::fmt;

/// Error produced when parsing or validating any of the model types.
///
/// Every parser in this crate ([`crate::CveId`], [`crate::Cpe`],
/// [`crate::CvssV2`], [`crate::Date`], [`crate::OsDistribution`]) reports
/// failures through this type so that callers can bubble them up with `?`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A CVE identifier did not have the `CVE-YEAR-NUMBER` shape.
    ParseCveId {
        /// The offending input.
        input: String,
        /// Human readable description of what was wrong.
        reason: &'static str,
    },
    /// A CPE URI could not be parsed.
    ParseCpe {
        /// The offending input.
        input: String,
        /// Human readable description of what was wrong.
        reason: &'static str,
    },
    /// A CVSS v2 vector could not be parsed.
    ParseCvss {
        /// The offending input.
        input: String,
        /// Human readable description of what was wrong.
        reason: &'static str,
    },
    /// A date string could not be parsed or was out of range.
    ParseDate {
        /// The offending input.
        input: String,
        /// Human readable description of what was wrong.
        reason: &'static str,
    },
    /// An operating-system name was not one of the distributions studied
    /// in the paper.
    UnknownOs {
        /// The offending input.
        input: String,
    },
    /// A vulnerability entry failed validation when being built.
    InvalidEntry {
        /// Human readable description of what was wrong.
        reason: &'static str,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::ParseCveId { input, reason } => {
                write!(f, "invalid CVE identifier {input:?}: {reason}")
            }
            ModelError::ParseCpe { input, reason } => {
                write!(f, "invalid CPE URI {input:?}: {reason}")
            }
            ModelError::ParseCvss { input, reason } => {
                write!(f, "invalid CVSS v2 vector {input:?}: {reason}")
            }
            ModelError::ParseDate { input, reason } => {
                write!(f, "invalid date {input:?}: {reason}")
            }
            ModelError::UnknownOs { input } => {
                write!(f, "unknown operating system {input:?}")
            }
            ModelError::InvalidEntry { reason } => {
                write!(f, "invalid vulnerability entry: {reason}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_input() {
        let err = ModelError::ParseCveId {
            input: "CVE-XYZ".to_string(),
            reason: "missing year",
        };
        let text = err.to_string();
        assert!(text.contains("CVE-XYZ"));
        assert!(text.contains("missing year"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<ModelError>();
    }

    #[test]
    fn debug_is_never_empty() {
        let err = ModelError::InvalidEntry { reason: "empty" };
        assert!(!format!("{err:?}").is_empty());
    }
}
