//! CVSS version 2 base vectors and scores.
//!
//! The paper's third data filter (*Isolated Thin Server*) keeps only
//! vulnerabilities whose `CVSS_ACCESS_VECTOR` is `Network` or
//! `Adjacent Network`, i.e. remotely exploitable ones (Section IV-B). The
//! full base vector and score are modelled so the store can also expose
//! severity information.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::ModelError;

/// The CVSS v2 *Access Vector* metric: where an attacker must be located to
/// exploit the vulnerability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AccessVector {
    /// `AV:L` — requires local access to the machine.
    Local,
    /// `AV:A` — requires access to the local (adjacent) network.
    AdjacentNetwork,
    /// `AV:N` — exploitable across the network.
    Network,
}

impl AccessVector {
    /// Whether the vulnerability can be exploited without local access.
    ///
    /// This is exactly the paper's *"No Local"* filter: vulnerabilities with
    /// `Network` or `Adjacent Network` access vectors are considered remotely
    /// exploitable.
    ///
    /// # Example
    ///
    /// ```
    /// use nvd_model::AccessVector;
    /// assert!(AccessVector::Network.is_remote());
    /// assert!(AccessVector::AdjacentNetwork.is_remote());
    /// assert!(!AccessVector::Local.is_remote());
    /// ```
    pub fn is_remote(&self) -> bool {
        !matches!(self, AccessVector::Local)
    }

    /// Numeric weight used by the CVSS v2 exploitability sub-score.
    fn weight(&self) -> f64 {
        match self {
            AccessVector::Local => 0.395,
            AccessVector::AdjacentNetwork => 0.646,
            AccessVector::Network => 1.0,
        }
    }

    fn code(&self) -> &'static str {
        match self {
            AccessVector::Local => "L",
            AccessVector::AdjacentNetwork => "A",
            AccessVector::Network => "N",
        }
    }
}

impl fmt::Display for AccessVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessVector::Local => f.write_str("LOCAL"),
            AccessVector::AdjacentNetwork => f.write_str("ADJACENT_NETWORK"),
            AccessVector::Network => f.write_str("NETWORK"),
        }
    }
}

impl FromStr for AccessVector {
    type Err = ModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "L" | "LOCAL" => Ok(AccessVector::Local),
            "A" | "ADJACENT_NETWORK" | "ADJACENT NETWORK" => Ok(AccessVector::AdjacentNetwork),
            "N" | "NETWORK" => Ok(AccessVector::Network),
            _ => Err(ModelError::ParseCvss {
                input: s.to_string(),
                reason: "unknown access vector",
            }),
        }
    }
}

/// The CVSS v2 *Access Complexity* metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AccessComplexity {
    /// `AC:H` — specialized access conditions exist.
    High,
    /// `AC:M` — somewhat specialized access conditions.
    Medium,
    /// `AC:L` — no specialized access conditions.
    Low,
}

impl AccessComplexity {
    fn weight(&self) -> f64 {
        match self {
            AccessComplexity::High => 0.35,
            AccessComplexity::Medium => 0.61,
            AccessComplexity::Low => 0.71,
        }
    }

    fn code(&self) -> &'static str {
        match self {
            AccessComplexity::High => "H",
            AccessComplexity::Medium => "M",
            AccessComplexity::Low => "L",
        }
    }
}

/// The CVSS v2 *Authentication* metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Authentication {
    /// `Au:M` — multiple authentications required.
    Multiple,
    /// `Au:S` — a single authentication required.
    Single,
    /// `Au:N` — no authentication required.
    None,
}

impl Authentication {
    fn weight(&self) -> f64 {
        match self {
            Authentication::Multiple => 0.45,
            Authentication::Single => 0.56,
            Authentication::None => 0.704,
        }
    }

    fn code(&self) -> &'static str {
        match self {
            Authentication::Multiple => "M",
            Authentication::Single => "S",
            Authentication::None => "N",
        }
    }
}

/// The CVSS v2 impact level shared by the confidentiality, integrity and
/// availability metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ImpactMetric {
    /// `N` — no impact.
    None,
    /// `P` — partial impact.
    Partial,
    /// `C` — complete impact.
    Complete,
}

impl ImpactMetric {
    fn weight(&self) -> f64 {
        match self {
            ImpactMetric::None => 0.0,
            ImpactMetric::Partial => 0.275,
            ImpactMetric::Complete => 0.660,
        }
    }

    fn code(&self) -> &'static str {
        match self {
            ImpactMetric::None => "N",
            ImpactMetric::Partial => "P",
            ImpactMetric::Complete => "C",
        }
    }
}

/// Qualitative severity rating derived from the CVSS v2 base score using the
/// NVD thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Base score in `[0.0, 4.0)`.
    Low,
    /// Base score in `[4.0, 7.0)`.
    Medium,
    /// Base score in `[7.0, 10.0]`.
    High,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Low => f.write_str("LOW"),
            Severity::Medium => f.write_str("MEDIUM"),
            Severity::High => f.write_str("HIGH"),
        }
    }
}

/// A CVSS version 2 base vector, e.g. `AV:N/AC:L/Au:N/C:P/I:P/A:P`.
///
/// # Example
///
/// ```
/// use nvd_model::{CvssV2, Severity};
///
/// # fn main() -> Result<(), nvd_model::ModelError> {
/// let cvss: CvssV2 = "AV:N/AC:L/Au:N/C:P/I:P/A:P".parse()?;
/// assert_eq!(cvss.base_score(), 7.5);
/// assert_eq!(cvss.severity(), Severity::High);
/// assert!(cvss.access_vector().is_remote());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CvssV2 {
    access_vector: AccessVector,
    access_complexity: AccessComplexity,
    authentication: Authentication,
    confidentiality: ImpactMetric,
    integrity: ImpactMetric,
    availability: ImpactMetric,
}

impl CvssV2 {
    /// Creates a base vector from its six metrics.
    pub fn new(
        access_vector: AccessVector,
        access_complexity: AccessComplexity,
        authentication: Authentication,
        confidentiality: ImpactMetric,
        integrity: ImpactMetric,
        availability: ImpactMetric,
    ) -> Self {
        CvssV2 {
            access_vector,
            access_complexity,
            authentication,
            confidentiality,
            integrity,
            availability,
        }
    }

    /// A typical vector for a remotely exploitable vulnerability
    /// (`AV:N/AC:L/Au:N/C:P/I:P/A:P`, base score 7.5).
    pub fn typical_remote() -> Self {
        CvssV2::new(
            AccessVector::Network,
            AccessComplexity::Low,
            Authentication::None,
            ImpactMetric::Partial,
            ImpactMetric::Partial,
            ImpactMetric::Partial,
        )
    }

    /// A typical vector for a locally exploitable vulnerability
    /// (`AV:L/AC:L/Au:N/C:P/I:P/A:P`, base score 4.6).
    pub fn typical_local() -> Self {
        CvssV2::new(
            AccessVector::Local,
            AccessComplexity::Low,
            Authentication::None,
            ImpactMetric::Partial,
            ImpactMetric::Partial,
            ImpactMetric::Partial,
        )
    }

    /// The access-vector metric.
    pub fn access_vector(&self) -> AccessVector {
        self.access_vector
    }

    /// The access-complexity metric.
    pub fn access_complexity(&self) -> AccessComplexity {
        self.access_complexity
    }

    /// The authentication metric.
    pub fn authentication(&self) -> Authentication {
        self.authentication
    }

    /// The confidentiality-impact metric.
    pub fn confidentiality(&self) -> ImpactMetric {
        self.confidentiality
    }

    /// The integrity-impact metric.
    pub fn integrity(&self) -> ImpactMetric {
        self.integrity
    }

    /// The availability-impact metric.
    pub fn availability(&self) -> ImpactMetric {
        self.availability
    }

    /// The CVSS v2 impact sub-score (`10.41 * (1 - (1-C)(1-I)(1-A))`).
    pub fn impact_subscore(&self) -> f64 {
        10.41
            * (1.0
                - (1.0 - self.confidentiality.weight())
                    * (1.0 - self.integrity.weight())
                    * (1.0 - self.availability.weight()))
    }

    /// The CVSS v2 exploitability sub-score (`20 * AV * AC * Au`).
    pub fn exploitability_subscore(&self) -> f64 {
        20.0 * self.access_vector.weight()
            * self.access_complexity.weight()
            * self.authentication.weight()
    }

    /// The CVSS v2 base score, rounded to one decimal as NVD publishes it.
    pub fn base_score(&self) -> f64 {
        let impact = self.impact_subscore();
        let exploitability = self.exploitability_subscore();
        let f_impact = if impact == 0.0 { 0.0 } else { 1.176 };
        let raw = ((0.6 * impact) + (0.4 * exploitability) - 1.5) * f_impact;
        (raw * 10.0).round() / 10.0
    }

    /// The qualitative severity of the base score.
    pub fn severity(&self) -> Severity {
        let score = self.base_score();
        if score < 4.0 {
            Severity::Low
        } else if score < 7.0 {
            Severity::Medium
        } else {
            Severity::High
        }
    }
}

impl fmt::Display for CvssV2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "AV:{}/AC:{}/Au:{}/C:{}/I:{}/A:{}",
            self.access_vector.code(),
            self.access_complexity.code(),
            self.authentication.code(),
            self.confidentiality.code(),
            self.integrity.code(),
            self.availability.code()
        )
    }
}

impl FromStr for CvssV2 {
    type Err = ModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |reason| ModelError::ParseCvss {
            input: s.to_string(),
            reason,
        };
        // Accept vectors wrapped in parentheses, as some feeds publish them.
        let trimmed = s.trim().trim_start_matches('(').trim_end_matches(')');
        let mut av = None;
        let mut ac = None;
        let mut au = None;
        let mut c = None;
        let mut i = None;
        let mut a = None;
        for metric in trimmed.split('/') {
            let (key, value) = metric
                .split_once(':')
                .ok_or_else(|| err("metric without \":\" separator"))?;
            match key {
                "AV" => av = Some(value.parse::<AccessVector>().map_err(|_| err("bad AV"))?),
                "AC" => {
                    ac = Some(match value {
                        "H" => AccessComplexity::High,
                        "M" => AccessComplexity::Medium,
                        "L" => AccessComplexity::Low,
                        _ => return Err(err("bad AC")),
                    })
                }
                "Au" => {
                    au = Some(match value {
                        "M" => Authentication::Multiple,
                        "S" => Authentication::Single,
                        "N" => Authentication::None,
                        _ => return Err(err("bad Au")),
                    })
                }
                "C" | "I" | "A" => {
                    let impact = match value {
                        "N" => ImpactMetric::None,
                        "P" => ImpactMetric::Partial,
                        "C" => ImpactMetric::Complete,
                        _ => return Err(err("bad impact metric")),
                    };
                    match key {
                        "C" => c = Some(impact),
                        "I" => i = Some(impact),
                        _ => a = Some(impact),
                    }
                }
                // Temporal/environmental metrics are ignored if present.
                "E" | "RL" | "RC" | "CDP" | "TD" | "CR" | "IR" | "AR" => {}
                _ => return Err(err("unknown metric key")),
            }
        }
        Ok(CvssV2 {
            access_vector: av.ok_or_else(|| err("missing AV"))?,
            access_complexity: ac.ok_or_else(|| err("missing AC"))?,
            authentication: au.ok_or_else(|| err("missing Au"))?,
            confidentiality: c.ok_or_else(|| err("missing C"))?,
            integrity: i.ok_or_else(|| err("missing I"))?,
            availability: a.ok_or_else(|| err("missing A"))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parse_canonical_vector() {
        let v: CvssV2 = "AV:N/AC:L/Au:N/C:P/I:P/A:P".parse().unwrap();
        assert_eq!(v.access_vector(), AccessVector::Network);
        assert_eq!(v.access_complexity(), AccessComplexity::Low);
        assert_eq!(v.authentication(), Authentication::None);
    }

    #[test]
    fn parse_parenthesised_vector() {
        let v: CvssV2 = "(AV:L/AC:H/Au:S/C:C/I:C/A:C)".parse().unwrap();
        assert_eq!(v.access_vector(), AccessVector::Local);
        assert_eq!(v.authentication(), Authentication::Single);
    }

    #[test]
    fn known_base_scores() {
        // Reference values from the CVSS v2 specification / NVD calculator.
        let cases = [
            ("AV:N/AC:L/Au:N/C:P/I:P/A:P", 7.5),
            ("AV:N/AC:L/Au:N/C:C/I:C/A:C", 10.0),
            ("AV:L/AC:L/Au:N/C:P/I:P/A:P", 4.6),
            ("AV:N/AC:L/Au:N/C:N/I:N/A:C", 7.8),
            ("AV:N/AC:M/Au:N/C:P/I:N/A:N", 4.3),
            ("AV:L/AC:L/Au:N/C:C/I:C/A:C", 7.2),
            ("AV:N/AC:L/Au:N/C:N/I:N/A:N", 0.0),
            ("AV:A/AC:L/Au:N/C:P/I:P/A:P", 5.8),
        ];
        for (vector, expected) in cases {
            let v: CvssV2 = vector.parse().unwrap();
            assert!(
                (v.base_score() - expected).abs() < 1e-9,
                "vector {vector} produced {} instead of {expected}",
                v.base_score()
            );
        }
    }

    #[test]
    fn severity_thresholds() {
        let low: CvssV2 = "AV:L/AC:H/Au:S/C:N/I:N/A:P".parse().unwrap();
        assert_eq!(low.severity(), Severity::Low);
        let medium: CvssV2 = "AV:L/AC:L/Au:N/C:P/I:P/A:P".parse().unwrap();
        assert_eq!(medium.severity(), Severity::Medium);
        let high: CvssV2 = "AV:N/AC:L/Au:N/C:C/I:C/A:C".parse().unwrap();
        assert_eq!(high.severity(), Severity::High);
    }

    #[test]
    fn remote_classification_matches_paper_filter() {
        assert!(CvssV2::typical_remote().access_vector().is_remote());
        assert!(!CvssV2::typical_local().access_vector().is_remote());
        let adjacent: CvssV2 = "AV:A/AC:L/Au:N/C:P/I:P/A:P".parse().unwrap();
        assert!(adjacent.access_vector().is_remote());
    }

    #[test]
    fn access_vector_parses_long_names() {
        assert_eq!(
            "NETWORK".parse::<AccessVector>().unwrap(),
            AccessVector::Network
        );
        assert_eq!(
            "ADJACENT_NETWORK".parse::<AccessVector>().unwrap(),
            AccessVector::AdjacentNetwork
        );
        assert!("INTERNET".parse::<AccessVector>().is_err());
    }

    #[test]
    fn rejects_incomplete_vectors() {
        assert!("AV:N/AC:L/Au:N/C:P/I:P".parse::<CvssV2>().is_err());
        assert!("AV:N/AC:L".parse::<CvssV2>().is_err());
        assert!("AV:X/AC:L/Au:N/C:P/I:P/A:P".parse::<CvssV2>().is_err());
    }

    fn metric_strategy() -> impl Strategy<Value = CvssV2> {
        (
            prop_oneof![
                Just(AccessVector::Local),
                Just(AccessVector::AdjacentNetwork),
                Just(AccessVector::Network)
            ],
            prop_oneof![
                Just(AccessComplexity::High),
                Just(AccessComplexity::Medium),
                Just(AccessComplexity::Low)
            ],
            prop_oneof![
                Just(Authentication::Multiple),
                Just(Authentication::Single),
                Just(Authentication::None)
            ],
            prop_oneof![
                Just(ImpactMetric::None),
                Just(ImpactMetric::Partial),
                Just(ImpactMetric::Complete)
            ],
            prop_oneof![
                Just(ImpactMetric::None),
                Just(ImpactMetric::Partial),
                Just(ImpactMetric::Complete)
            ],
            prop_oneof![
                Just(ImpactMetric::None),
                Just(ImpactMetric::Partial),
                Just(ImpactMetric::Complete)
            ],
        )
            .prop_map(|(av, ac, au, c, i, a)| CvssV2::new(av, ac, au, c, i, a))
    }

    proptest! {
        #[test]
        fn roundtrip(v in metric_strategy()) {
            let parsed: CvssV2 = v.to_string().parse().unwrap();
            prop_assert_eq!(v, parsed);
        }

        #[test]
        fn base_score_in_range(v in metric_strategy()) {
            let score = v.base_score();
            prop_assert!((0.0..=10.0).contains(&score), "score {} out of range", score);
        }

        #[test]
        fn zero_impact_means_zero_score(av in prop_oneof![
            Just(AccessVector::Local), Just(AccessVector::AdjacentNetwork), Just(AccessVector::Network)
        ]) {
            let v = CvssV2::new(
                av,
                AccessComplexity::Low,
                Authentication::None,
                ImpactMetric::None,
                ImpactMetric::None,
                ImpactMetric::None,
            );
            prop_assert_eq!(v.base_score(), 0.0);
        }
    }
}
