//! The operating-system distributions, families, releases and OS sets used
//! throughout the study.
//!
//! Section III of the paper clusters 64 CPE `(product, vendor)` pairs into 11
//! OS distributions covering four families (BSD, Solaris, Linux and Windows).
//! [`OsDistribution`] enumerates those distributions, [`OsFamily`] the
//! families, [`OsSet`] is a compact bit-set over distributions used heavily by
//! the analysis crates, and [`OsRelease`] models the per-release analysis of
//! Section IV-D (Table VI).

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::{Cpe, ModelError};

/// One of the four operating-system families studied in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OsFamily {
    /// OpenBSD, NetBSD and FreeBSD.
    Bsd,
    /// Solaris and OpenSolaris.
    Solaris,
    /// Debian, Ubuntu and RedHat.
    Linux,
    /// Windows 2000, 2003 and 2008 server editions.
    Windows,
}

impl OsFamily {
    /// All four families, in the order the paper presents them (Figure 2).
    pub const ALL: [OsFamily; 4] = [
        OsFamily::Solaris,
        OsFamily::Bsd,
        OsFamily::Windows,
        OsFamily::Linux,
    ];

    /// The distributions belonging to this family.
    ///
    /// # Example
    ///
    /// ```
    /// use nvd_model::{OsDistribution, OsFamily};
    /// assert_eq!(OsFamily::Solaris.members().len(), 2);
    /// assert!(OsFamily::Bsd.members().contains(&OsDistribution::OpenBsd));
    /// ```
    pub fn members(&self) -> &'static [OsDistribution] {
        match self {
            OsFamily::Bsd => &[
                OsDistribution::OpenBsd,
                OsDistribution::NetBsd,
                OsDistribution::FreeBsd,
            ],
            OsFamily::Solaris => &[OsDistribution::OpenSolaris, OsDistribution::Solaris],
            OsFamily::Linux => &[
                OsDistribution::Debian,
                OsDistribution::Ubuntu,
                OsDistribution::RedHat,
            ],
            OsFamily::Windows => &[
                OsDistribution::Windows2000,
                OsDistribution::Windows2003,
                OsDistribution::Windows2008,
            ],
        }
    }
}

impl fmt::Display for OsFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OsFamily::Bsd => f.write_str("BSD"),
            OsFamily::Solaris => f.write_str("Solaris"),
            OsFamily::Linux => f.write_str("Linux"),
            OsFamily::Windows => f.write_str("Windows"),
        }
    }
}

impl FromStr for OsFamily {
    type Err = ModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "bsd" => Ok(OsFamily::Bsd),
            "solaris" => Ok(OsFamily::Solaris),
            "linux" => Ok(OsFamily::Linux),
            "windows" => Ok(OsFamily::Windows),
            _ => Err(ModelError::UnknownOs {
                input: s.to_string(),
            }),
        }
    }
}

/// One of the 11 operating-system distributions studied in the paper.
///
/// The discriminants are used as bit positions by [`OsSet`], so the enum is
/// `repr(u8)` and the order matches Table I of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum OsDistribution {
    /// OpenBSD.
    OpenBsd = 0,
    /// NetBSD.
    NetBsd = 1,
    /// FreeBSD.
    FreeBsd = 2,
    /// OpenSolaris.
    OpenSolaris = 3,
    /// Sun/Oracle Solaris.
    Solaris = 4,
    /// Debian GNU/Linux.
    Debian = 5,
    /// Ubuntu Linux.
    Ubuntu = 6,
    /// Red Hat Linux and Red Hat Enterprise Linux (the paper merges both).
    RedHat = 7,
    /// Microsoft Windows 2000.
    Windows2000 = 8,
    /// Microsoft Windows Server 2003.
    Windows2003 = 9,
    /// Microsoft Windows Server 2008.
    Windows2008 = 10,
}

impl OsDistribution {
    /// All 11 distributions in Table I order.
    pub const ALL: [OsDistribution; 11] = [
        OsDistribution::OpenBsd,
        OsDistribution::NetBsd,
        OsDistribution::FreeBsd,
        OsDistribution::OpenSolaris,
        OsDistribution::Solaris,
        OsDistribution::Debian,
        OsDistribution::Ubuntu,
        OsDistribution::RedHat,
        OsDistribution::Windows2000,
        OsDistribution::Windows2003,
        OsDistribution::Windows2008,
    ];

    /// Number of distributions studied.
    pub const COUNT: usize = Self::ALL.len();

    /// The bit index used by [`OsSet`] (0–10).
    pub fn index(&self) -> usize {
        *self as usize
    }

    /// The inverse of [`OsDistribution::index`].
    pub fn from_index(index: usize) -> Option<Self> {
        Self::ALL.get(index).copied()
    }

    /// The OS family of this distribution.
    ///
    /// # Example
    ///
    /// ```
    /// use nvd_model::{OsDistribution, OsFamily};
    /// assert_eq!(OsDistribution::Debian.family(), OsFamily::Linux);
    /// assert_eq!(OsDistribution::Windows2008.family(), OsFamily::Windows);
    /// ```
    pub fn family(&self) -> OsFamily {
        match self {
            OsDistribution::OpenBsd | OsDistribution::NetBsd | OsDistribution::FreeBsd => {
                OsFamily::Bsd
            }
            OsDistribution::OpenSolaris | OsDistribution::Solaris => OsFamily::Solaris,
            OsDistribution::Debian | OsDistribution::Ubuntu | OsDistribution::RedHat => {
                OsFamily::Linux
            }
            OsDistribution::Windows2000
            | OsDistribution::Windows2003
            | OsDistribution::Windows2008 => OsFamily::Windows,
        }
    }

    /// Short display name matching the paper's tables (e.g. `Win2003`).
    pub fn short_name(&self) -> &'static str {
        match self {
            OsDistribution::OpenBsd => "OpenBSD",
            OsDistribution::NetBsd => "NetBSD",
            OsDistribution::FreeBsd => "FreeBSD",
            OsDistribution::OpenSolaris => "OpenSolaris",
            OsDistribution::Solaris => "Solaris",
            OsDistribution::Debian => "Debian",
            OsDistribution::Ubuntu => "Ubuntu",
            OsDistribution::RedHat => "RedHat",
            OsDistribution::Windows2000 => "Win2000",
            OsDistribution::Windows2003 => "Win2003",
            OsDistribution::Windows2008 => "Win2008",
        }
    }

    /// Year of the first release of the distribution, used when reasoning
    /// about vulnerability reports predating the distribution (Section IV-A).
    pub fn first_release_year(&self) -> u16 {
        match self {
            OsDistribution::OpenBsd => 1996,
            OsDistribution::NetBsd => 1993,
            OsDistribution::FreeBsd => 1993,
            OsDistribution::OpenSolaris => 2008,
            OsDistribution::Solaris => 1992,
            OsDistribution::Debian => 1996,
            OsDistribution::Ubuntu => 2004,
            OsDistribution::RedHat => 1995,
            OsDistribution::Windows2000 => 2000,
            OsDistribution::Windows2003 => 2003,
            OsDistribution::Windows2008 => 2008,
        }
    }

    /// The canonical CPE for the distribution (no version component).
    ///
    /// # Example
    ///
    /// ```
    /// use nvd_model::OsDistribution;
    /// let cpe = OsDistribution::Windows2003.canonical_cpe();
    /// assert_eq!(cpe.to_string(), "cpe:/o:microsoft:windows_2003_server");
    /// ```
    pub fn canonical_cpe(&self) -> Cpe {
        let (vendor, product) = match self {
            OsDistribution::OpenBsd => ("openbsd", "openbsd"),
            OsDistribution::NetBsd => ("netbsd", "netbsd"),
            OsDistribution::FreeBsd => ("freebsd", "freebsd"),
            OsDistribution::OpenSolaris => ("sun", "opensolaris"),
            OsDistribution::Solaris => ("sun", "solaris"),
            OsDistribution::Debian => ("debian", "debian_linux"),
            OsDistribution::Ubuntu => ("canonical", "ubuntu_linux"),
            OsDistribution::RedHat => ("redhat", "enterprise_linux"),
            OsDistribution::Windows2000 => ("microsoft", "windows_2000"),
            OsDistribution::Windows2003 => ("microsoft", "windows_2003_server"),
            OsDistribution::Windows2008 => ("microsoft", "windows_server_2008"),
        };
        Cpe::new(crate::CpePart::OperatingSystem, vendor, product)
    }

    /// Clusters an OS-level CPE into one of the 11 distributions, reproducing
    /// the manual clustering of the 64 CPEs described in Section III of the
    /// paper. Returns `None` for non-OS CPEs and for operating systems
    /// outside the study (e.g. HP-UX, AIX, Mac OS X).
    ///
    /// The mapping is deliberately tolerant of the naming inconsistencies the
    /// paper reports, e.g. both `("debian_linux", "debian")` and
    /// `("linux", "debian")` map to [`OsDistribution::Debian`].
    pub fn from_cpe(cpe: &Cpe) -> Option<Self> {
        if !cpe.is_operating_system() {
            return None;
        }
        Self::from_vendor_product(cpe.vendor(), cpe.product())
    }

    /// Clusters a raw `(vendor, product)` pair, see [`OsDistribution::from_cpe`].
    pub fn from_vendor_product(vendor: &str, product: &str) -> Option<Self> {
        let vendor = vendor.to_ascii_lowercase();
        let product = product.to_ascii_lowercase();
        match (vendor.as_str(), product.as_str()) {
            (_, "openbsd") => Some(OsDistribution::OpenBsd),
            (_, "netbsd") => Some(OsDistribution::NetBsd),
            (_, "freebsd") => Some(OsDistribution::FreeBsd),
            (_, "opensolaris") | (_, "open_solaris") => Some(OsDistribution::OpenSolaris),
            (_, "solaris") | (_, "sunos") => Some(OsDistribution::Solaris),
            ("debian", "linux") | ("debian", "debian_linux") | (_, "debian_linux") => {
                Some(OsDistribution::Debian)
            }
            ("canonical", "ubuntu_linux")
            | ("canonical", "ubuntu")
            | ("ubuntu", "ubuntu_linux")
            | ("ubuntu", "linux")
            | (_, "ubuntu_linux") => Some(OsDistribution::Ubuntu),
            ("redhat", "linux")
            | ("redhat", "enterprise_linux")
            | ("redhat", "enterprise_linux_server")
            | ("redhat", "enterprise_linux_desktop")
            | ("redhat", "enterprise_linux_workstation")
            | ("redhat", "redhat_linux")
            | (_, "enterprise_linux") => Some(OsDistribution::RedHat),
            ("microsoft", p) => {
                if p.contains("2000") {
                    Some(OsDistribution::Windows2000)
                } else if p.contains("2003") {
                    Some(OsDistribution::Windows2003)
                } else if p.contains("2008") {
                    Some(OsDistribution::Windows2008)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// The OS releases of this distribution used by the per-release analysis
    /// (Section IV-D). Only the distributions for which the paper found a
    /// meaningful correlation between security trackers and the NVD carry
    /// release information; the remaining distributions return an empty
    /// slice.
    pub fn releases(&self) -> &'static [OsRelease] {
        const DEBIAN: [OsRelease; 3] = [
            OsRelease::new(OsDistribution::Debian, "2.1", 1999),
            OsRelease::new(OsDistribution::Debian, "3.0", 2002),
            OsRelease::new(OsDistribution::Debian, "4.0", 2007),
        ];
        const REDHAT: [OsRelease; 3] = [
            OsRelease::new(OsDistribution::RedHat, "6.2", 2000),
            OsRelease::new(OsDistribution::RedHat, "4.0", 2005),
            OsRelease::new(OsDistribution::RedHat, "5.0", 2007),
        ];
        const NETBSD: [OsRelease; 4] = [
            OsRelease::new(OsDistribution::NetBsd, "1.6", 2002),
            OsRelease::new(OsDistribution::NetBsd, "2.0", 2004),
            OsRelease::new(OsDistribution::NetBsd, "3.0.1", 2006),
            OsRelease::new(OsDistribution::NetBsd, "4.0", 2007),
        ];
        const UBUNTU: [OsRelease; 4] = [
            OsRelease::new(OsDistribution::Ubuntu, "4.10", 2004),
            OsRelease::new(OsDistribution::Ubuntu, "5.04", 2005),
            OsRelease::new(OsDistribution::Ubuntu, "8.04", 2008),
            OsRelease::new(OsDistribution::Ubuntu, "9.04", 2009),
        ];
        match self {
            OsDistribution::Debian => &DEBIAN,
            OsDistribution::RedHat => &REDHAT,
            OsDistribution::NetBsd => &NETBSD,
            OsDistribution::Ubuntu => &UBUNTU,
            _ => &[],
        }
    }
}

impl fmt::Display for OsDistribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

impl FromStr for OsDistribution {
    type Err = ModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let normalized: String = s
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect::<String>()
            .to_ascii_lowercase();
        let os = match normalized.as_str() {
            "openbsd" => OsDistribution::OpenBsd,
            "netbsd" => OsDistribution::NetBsd,
            "freebsd" => OsDistribution::FreeBsd,
            "opensolaris" => OsDistribution::OpenSolaris,
            "solaris" => OsDistribution::Solaris,
            "debian" | "debianlinux" => OsDistribution::Debian,
            "ubuntu" | "ubuntulinux" => OsDistribution::Ubuntu,
            "redhat" | "rhel" | "redhatlinux" | "redhatenterpriselinux" => OsDistribution::RedHat,
            "win2000" | "windows2000" => OsDistribution::Windows2000,
            "win2003" | "windows2003" | "windowsserver2003" => OsDistribution::Windows2003,
            "win2008" | "windows2008" | "windowsserver2008" => OsDistribution::Windows2008,
            _ => {
                return Err(ModelError::UnknownOs {
                    input: s.to_string(),
                })
            }
        };
        Ok(os)
    }
}

/// A specific release of an OS distribution, e.g. Debian 4.0 (2007).
///
/// Used by the per-release diversity analysis (Section IV-D, Table VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OsRelease {
    distribution: OsDistribution,
    version: &'static str,
    year: u16,
}

impl OsRelease {
    /// Creates a release descriptor.
    pub const fn new(distribution: OsDistribution, version: &'static str, year: u16) -> Self {
        OsRelease {
            distribution,
            version,
            year,
        }
    }

    /// The distribution this release belongs to.
    pub fn distribution(&self) -> OsDistribution {
        self.distribution
    }

    /// The release version string (e.g. `"4.0"`).
    pub fn version(&self) -> &'static str {
        self.version
    }

    /// The release year.
    pub fn year(&self) -> u16 {
        self.year
    }

    /// Label used in Table VI, e.g. `Debian4.0`.
    pub fn label(&self) -> String {
        format!("{}{}", self.distribution.short_name(), self.version)
    }
}

impl fmt::Display for OsRelease {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.distribution.short_name(), self.version)
    }
}

/// A compact set of OS distributions, stored as an 11-bit mask.
///
/// Every analysis in the paper is a question about sets of operating
/// systems: which OSes a vulnerability affects, which OSes form a replica
/// group, how many vulnerabilities affect *all* members of a group. `OsSet`
/// makes those operations cheap (bitwise) and `Copy`.
///
/// # Example
///
/// ```
/// use nvd_model::{OsDistribution, OsSet};
///
/// let set1 = OsSet::from_iter([
///     OsDistribution::Windows2003,
///     OsDistribution::Solaris,
///     OsDistribution::Debian,
///     OsDistribution::OpenBsd,
/// ]);
/// assert_eq!(set1.len(), 4);
/// assert!(set1.contains(OsDistribution::Debian));
///
/// let bsd = OsSet::family(nvd_model::OsFamily::Bsd);
/// assert_eq!(set1.intersection(bsd).len(), 1);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct OsSet(u16);

impl OsSet {
    /// The mask with all 11 distributions set.
    const FULL_MASK: u16 = (1 << OsDistribution::COUNT as u16) - 1;

    /// The empty set.
    pub const EMPTY: OsSet = OsSet(0);

    /// Creates an empty set.
    pub fn new() -> Self {
        OsSet(0)
    }

    /// The set containing every distribution in the study.
    pub fn all() -> Self {
        OsSet(Self::FULL_MASK)
    }

    /// The set containing the members of `family`.
    pub fn family(family: OsFamily) -> Self {
        family.members().iter().copied().collect()
    }

    /// The set containing exactly one distribution.
    pub fn singleton(os: OsDistribution) -> Self {
        OsSet(1 << os.index() as u16)
    }

    /// The set containing exactly the pair `{a, b}`.
    pub fn pair(a: OsDistribution, b: OsDistribution) -> Self {
        OsSet::singleton(a).union(OsSet::singleton(b))
    }

    /// Number of distributions in the set.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Whether `os` is a member of the set.
    pub fn contains(&self, os: OsDistribution) -> bool {
        self.0 & (1 << os.index() as u16) != 0
    }

    /// Adds `os` to the set; returns `true` if it was not already present.
    pub fn insert(&mut self, os: OsDistribution) -> bool {
        let bit = 1 << os.index() as u16;
        let was_absent = self.0 & bit == 0;
        self.0 |= bit;
        was_absent
    }

    /// Removes `os` from the set; returns `true` if it was present.
    pub fn remove(&mut self, os: OsDistribution) -> bool {
        let bit = 1 << os.index() as u16;
        let was_present = self.0 & bit != 0;
        self.0 &= !bit;
        was_present
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: OsSet) -> OsSet {
        OsSet(self.0 | other.0)
    }

    /// Set intersection.
    #[must_use]
    pub fn intersection(self, other: OsSet) -> OsSet {
        OsSet(self.0 & other.0)
    }

    /// Set difference (`self \ other`).
    #[must_use]
    pub fn difference(self, other: OsSet) -> OsSet {
        OsSet(self.0 & !other.0)
    }

    /// Complement with respect to the full 11-OS universe.
    #[must_use]
    pub fn complement(self) -> OsSet {
        OsSet(!self.0 & Self::FULL_MASK)
    }

    /// Whether every member of `self` is also in `other`.
    pub fn is_subset_of(&self, other: &OsSet) -> bool {
        self.0 & other.0 == self.0
    }

    /// Whether the two sets share at least one member.
    pub fn intersects(&self, other: &OsSet) -> bool {
        self.0 & other.0 != 0
    }

    /// Iterates over the members in [`OsDistribution::ALL`] order.
    pub fn iter(&self) -> OsSetIter {
        OsSetIter { remaining: self.0 }
    }

    /// The raw 11-bit mask (bit *i* set means `OsDistribution::from_index(i)`
    /// is a member). Exposed for compact storage in the relational store.
    pub fn bits(&self) -> u16 {
        self.0
    }

    /// Rebuilds a set from a raw mask, ignoring bits beyond the 11 used.
    pub fn from_bits(bits: u16) -> Self {
        OsSet(bits & Self::FULL_MASK)
    }

    /// Enumerates every subset of `self` with exactly `k` members,
    /// lazily.
    ///
    /// Used by the k-OS combination analysis (Section IV-B). The iterator
    /// advances with Gosper's hack (next k-combination in ascending mask
    /// order) over a compacted universe of the set's members, so no
    /// intermediate `Vec` is allocated — there are `C(len, k)` subsets, up
    /// to `C(11, 5) = 462`, and the iterator is [`ExactSizeIterator`].
    ///
    /// # Example
    ///
    /// ```
    /// use nvd_model::OsSet;
    /// let all = OsSet::all();
    /// assert_eq!(all.subsets_of_size(2).len(), 55); // the 55 OS pairs
    /// ```
    pub fn subsets_of_size(&self, k: usize) -> SubsetsOfSize {
        let mut member_bits = [0u16; OsDistribution::COUNT];
        let mut n = 0usize;
        let mut bits = self.0;
        while bits != 0 {
            member_bits[n] = bits & bits.wrapping_neg();
            bits &= bits - 1;
            n += 1;
        }
        SubsetsOfSize {
            member_bits,
            remaining: binomial(n, k),
            compact: if k == 0 || k > n { 0 } else { (1u32 << k) - 1 },
        }
    }
}

/// `C(n, k)` for the tiny arguments [`OsSet::subsets_of_size`] needs
/// (`n ≤ 11`).
fn binomial(n: usize, k: usize) -> usize {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result = 1usize;
    for i in 0..k {
        result = result * (n - i) / (i + 1);
    }
    result
}

impl FromIterator<OsDistribution> for OsSet {
    fn from_iter<T: IntoIterator<Item = OsDistribution>>(iter: T) -> Self {
        let mut set = OsSet::new();
        for os in iter {
            set.insert(os);
        }
        set
    }
}

impl Extend<OsDistribution> for OsSet {
    fn extend<T: IntoIterator<Item = OsDistribution>>(&mut self, iter: T) {
        for os in iter {
            self.insert(os);
        }
    }
}

impl IntoIterator for OsSet {
    type Item = OsDistribution;
    type IntoIter = OsSetIter;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl IntoIterator for &OsSet {
    type Item = OsDistribution;
    type IntoIter = OsSetIter;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl fmt::Display for OsSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, os) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{os}")?;
        }
        write!(f, "}}")
    }
}

/// Lazy iterator over the `k`-member subsets of an [`OsSet`], produced by
/// [`OsSet::subsets_of_size`].
///
/// Internally a Gosper's-hack walk over compact `k`-of-`n` combination
/// masks (ascending mask order), mapped back to the universe bits of the
/// originating set on each step.
#[derive(Debug, Clone)]
pub struct SubsetsOfSize {
    /// The isolated universe bit of each member of the originating set,
    /// in ascending bit order (only the first `n` entries are used).
    member_bits: [u16; OsDistribution::COUNT],
    /// Subsets not yet yielded (`C(n, k)` at construction).
    remaining: usize,
    /// The current compact combination mask (bit `i` selects
    /// `member_bits[i]`).
    compact: u32,
}

impl Iterator for SubsetsOfSize {
    type Item = OsSet;

    fn next(&mut self) -> Option<OsSet> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // Expand the compact combination into universe bits.
        let mut mask = 0u16;
        let mut compact = self.compact;
        while compact != 0 {
            mask |= self.member_bits[compact.trailing_zeros() as usize];
            compact &= compact - 1;
        }
        if self.remaining > 0 {
            // Gosper's hack: the next integer with the same popcount.
            let c = self.compact;
            let lowest = c & c.wrapping_neg();
            let ripple = c + lowest;
            self.compact = (((ripple ^ c) >> 2) / lowest) | ripple;
        }
        Some(OsSet(mask))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for SubsetsOfSize {}

/// Iterator over the members of an [`OsSet`], produced by [`OsSet::iter`].
#[derive(Debug, Clone)]
pub struct OsSetIter {
    remaining: u16,
}

impl Iterator for OsSetIter {
    type Item = OsDistribution;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        let index = self.remaining.trailing_zeros() as usize;
        self.remaining &= self.remaining - 1;
        OsDistribution::from_index(index)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for OsSetIter {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn eleven_distributions_four_families() {
        assert_eq!(OsDistribution::ALL.len(), 11);
        assert_eq!(OsFamily::ALL.len(), 4);
        let total: usize = OsFamily::ALL.iter().map(|f| f.members().len()).sum();
        assert_eq!(total, 11);
    }

    #[test]
    fn family_membership_is_consistent() {
        for family in OsFamily::ALL {
            for os in family.members() {
                assert_eq!(os.family(), family, "{os} should be in {family}");
            }
        }
    }

    #[test]
    fn indexes_are_unique_and_dense() {
        for (i, os) in OsDistribution::ALL.iter().enumerate() {
            assert_eq!(os.index(), i);
            assert_eq!(OsDistribution::from_index(i), Some(*os));
        }
        assert_eq!(OsDistribution::from_index(11), None);
    }

    #[test]
    fn cpe_clustering_handles_aliases() {
        // The two Debian aliases explicitly mentioned in Section III.
        assert_eq!(
            OsDistribution::from_vendor_product("debian", "debian_linux"),
            Some(OsDistribution::Debian)
        );
        assert_eq!(
            OsDistribution::from_vendor_product("debian", "linux"),
            Some(OsDistribution::Debian)
        );
        assert_eq!(
            OsDistribution::from_vendor_product("redhat", "linux"),
            Some(OsDistribution::RedHat)
        );
        assert_eq!(
            OsDistribution::from_vendor_product("microsoft", "windows_server_2008"),
            Some(OsDistribution::Windows2008)
        );
        assert_eq!(
            OsDistribution::from_vendor_product("apple", "mac_os_x"),
            None
        );
    }

    #[test]
    fn canonical_cpe_roundtrips_through_clustering() {
        for os in OsDistribution::ALL {
            let cpe = os.canonical_cpe();
            assert_eq!(OsDistribution::from_cpe(&cpe), Some(os), "for {os}");
        }
    }

    #[test]
    fn application_cpe_is_not_clustered() {
        let cpe: Cpe = "cpe:/a:debian:debian_linux".parse().unwrap();
        assert_eq!(OsDistribution::from_cpe(&cpe), None);
    }

    #[test]
    fn from_str_accepts_paper_spellings() {
        assert_eq!(
            "Windows 2003".parse::<OsDistribution>().unwrap(),
            OsDistribution::Windows2003
        );
        assert_eq!(
            "Win2000".parse::<OsDistribution>().unwrap(),
            OsDistribution::Windows2000
        );
        assert_eq!(
            "RedHat".parse::<OsDistribution>().unwrap(),
            OsDistribution::RedHat
        );
        assert!("Plan9".parse::<OsDistribution>().is_err());
    }

    #[test]
    fn releases_match_table_vi_years() {
        let debian = OsDistribution::Debian.releases();
        assert_eq!(debian.len(), 3);
        assert_eq!(debian[0].label(), "Debian2.1");
        assert_eq!(debian[0].year(), 1999);
        assert_eq!(debian[2].year(), 2007);
        let redhat = OsDistribution::RedHat.releases();
        assert_eq!(redhat[0].label(), "RedHat6.2");
        assert_eq!(redhat[0].year(), 2000);
        assert!(OsDistribution::Windows2000.releases().is_empty());
    }

    #[test]
    fn osset_basic_operations() {
        let mut set = OsSet::new();
        assert!(set.is_empty());
        assert!(set.insert(OsDistribution::Debian));
        assert!(!set.insert(OsDistribution::Debian));
        assert!(set.contains(OsDistribution::Debian));
        assert_eq!(set.len(), 1);
        assert!(set.remove(OsDistribution::Debian));
        assert!(!set.remove(OsDistribution::Debian));
        assert!(set.is_empty());
    }

    #[test]
    fn osset_set_algebra() {
        let bsd = OsSet::family(OsFamily::Bsd);
        let linux = OsSet::family(OsFamily::Linux);
        assert_eq!(bsd.len(), 3);
        assert!(bsd.intersection(linux).is_empty());
        assert_eq!(bsd.union(linux).len(), 6);
        assert_eq!(OsSet::all().len(), 11);
        assert_eq!(bsd.complement().len(), 8);
        assert!(bsd.is_subset_of(&OsSet::all()));
        assert!(!OsSet::all().is_subset_of(&bsd));
        assert_eq!(OsSet::all().difference(bsd), bsd.complement());
    }

    #[test]
    fn osset_pair_and_iteration_order() {
        let pair = OsSet::pair(OsDistribution::Windows2003, OsDistribution::OpenBsd);
        let members: Vec<_> = pair.iter().collect();
        assert_eq!(
            members,
            vec![OsDistribution::OpenBsd, OsDistribution::Windows2003]
        );
    }

    #[test]
    fn osset_display() {
        let pair = OsSet::pair(OsDistribution::Debian, OsDistribution::RedHat);
        assert_eq!(pair.to_string(), "{Debian, RedHat}");
        assert_eq!(OsSet::EMPTY.to_string(), "{}");
    }

    #[test]
    fn subsets_of_size_counts_match_binomials() {
        let all = OsSet::all();
        assert_eq!(all.subsets_of_size(0).len(), 1);
        assert_eq!(all.subsets_of_size(1).len(), 11);
        assert_eq!(all.subsets_of_size(2).len(), 55);
        assert_eq!(all.subsets_of_size(3).len(), 165);
        assert_eq!(all.subsets_of_size(4).len(), 330);
        assert_eq!(all.subsets_of_size(5).len(), 462);
        assert_eq!(all.subsets_of_size(11).len(), 1);
        assert_eq!(all.subsets_of_size(12).len(), 0);
        let bsd = OsSet::family(OsFamily::Bsd);
        assert_eq!(bsd.subsets_of_size(2).len(), 3);
    }

    #[test]
    fn subsets_have_requested_size_and_are_subsets() {
        let all = OsSet::all();
        for subset in all.subsets_of_size(4) {
            assert_eq!(subset.len(), 4);
            assert!(subset.is_subset_of(&all));
        }
    }

    fn os_strategy() -> impl Strategy<Value = OsDistribution> {
        (0usize..OsDistribution::COUNT).prop_map(|i| OsDistribution::from_index(i).unwrap())
    }

    fn osset_strategy() -> impl Strategy<Value = OsSet> {
        (0u16..1 << 11).prop_map(OsSet::from_bits)
    }

    proptest! {
        #[test]
        fn bits_roundtrip(set in osset_strategy()) {
            prop_assert_eq!(OsSet::from_bits(set.bits()), set);
        }

        #[test]
        fn iter_collect_roundtrip(set in osset_strategy()) {
            let rebuilt: OsSet = set.iter().collect();
            prop_assert_eq!(rebuilt, set);
            prop_assert_eq!(set.iter().len(), set.len());
        }

        #[test]
        fn union_intersection_laws(a in osset_strategy(), b in osset_strategy()) {
            prop_assert_eq!(a.union(b), b.union(a));
            prop_assert_eq!(a.intersection(b), b.intersection(a));
            prop_assert!(a.intersection(b).is_subset_of(&a));
            prop_assert!(a.is_subset_of(&a.union(b)));
            // inclusion–exclusion for two sets
            prop_assert_eq!(
                a.union(b).len() + a.intersection(b).len(),
                a.len() + b.len()
            );
        }

        #[test]
        fn complement_laws(a in osset_strategy()) {
            prop_assert!(a.intersection(a.complement()).is_empty());
            prop_assert_eq!(a.union(a.complement()), OsSet::all());
            prop_assert_eq!(a.complement().complement(), a);
        }

        #[test]
        fn insert_then_contains(os in os_strategy(), set in osset_strategy()) {
            let mut set = set;
            set.insert(os);
            prop_assert!(set.contains(os));
            set.remove(os);
            prop_assert!(!set.contains(os));
        }

        #[test]
        fn display_parse_roundtrip_for_distributions(os in os_strategy()) {
            let parsed: OsDistribution = os.to_string().parse().unwrap();
            prop_assert_eq!(parsed, os);
        }
    }
}
