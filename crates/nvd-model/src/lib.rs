//! Data model for the OS-diversity study of Garcia et al. (DSN 2011),
//! *"OS diversity for intrusion tolerance: Myth or reality?"*.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace:
//!
//! * [`CveId`] — `CVE-YEAR-NUMBER` identifiers used by the NVD;
//! * [`Cpe`] — Common Platform Enumeration 2.2 URIs describing affected
//!   platforms, with the Hardware / Operating System / Application `part`
//!   distinction the paper filters on;
//! * [`CvssV2`] — CVSS version 2 vectors (the paper uses the
//!   `CVSS_ACCESS_VECTOR` field to separate locally from remotely
//!   exploitable vulnerabilities);
//! * [`OsDistribution`] / [`OsFamily`] / [`OsSet`] — the 11 operating-system
//!   distributions and 4 families studied in the paper, plus a compact set
//!   representation used heavily by the analysis crates;
//! * [`VulnerabilityEntry`] — a fully parsed NVD entry (publication date,
//!   summary, CVSS, affected operating systems, validity flag and the
//!   Driver / Kernel / System Software / Application classification of
//!   Section III-B of the paper).
//!
//! # Example
//!
//! ```
//! use nvd_model::{Cpe, CpePart, CveId, CvssV2, OsDistribution};
//!
//! # fn main() -> Result<(), nvd_model::ModelError> {
//! let id: CveId = "CVE-2008-4609".parse()?;
//! assert_eq!(id.year(), 2008);
//!
//! let cpe: Cpe = "cpe:/o:microsoft:windows_2003_server".parse()?;
//! assert_eq!(cpe.part(), CpePart::OperatingSystem);
//! assert_eq!(
//!     OsDistribution::from_cpe(&cpe),
//!     Some(OsDistribution::Windows2003)
//! );
//!
//! let cvss: CvssV2 = "AV:N/AC:L/Au:N/C:N/I:N/A:C".parse()?;
//! assert!(cvss.access_vector().is_remote());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cpe;
mod cve;
mod cvss;
mod date;
mod entry;
mod error;
mod os;

pub use cpe::{Cpe, CpePart};
pub use cve::CveId;
pub use cvss::{AccessComplexity, AccessVector, Authentication, CvssV2, ImpactMetric, Severity};
pub use date::Date;
pub use entry::{AffectedProduct, OsPart, Validity, VulnerabilityEntry, VulnerabilityEntryBuilder};
pub use error::ModelError;
pub use os::{OsDistribution, OsFamily, OsRelease, OsSet, OsSetIter, SubsetsOfSize};

/// Convenience result alias used across the crate.
pub type Result<T, E = ModelError> = std::result::Result<T, E>;
