//! Common Platform Enumeration (CPE) 2.2 URIs.
//!
//! NVD entries list the affected platforms as CPE URIs such as
//! `cpe:/o:microsoft:windows_2000::sp4` (Section III of the paper). The study
//! only keeps enumerations whose *part* is `o` (operating system) and then
//! clusters the `(vendor, product)` pairs into the 11 OS distributions.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::ModelError;

/// The *part* component of a CPE URI: hardware, operating system or
/// application.
///
/// The paper filters on `Operating System` ("`/o` on its CPE",
/// Section III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CpePart {
    /// `h` — a hardware platform.
    Hardware,
    /// `o` — an operating system.
    OperatingSystem,
    /// `a` — an application.
    Application,
}

impl CpePart {
    /// The single-letter code used in CPE 2.2 URIs (`h`, `o` or `a`).
    pub fn code(&self) -> char {
        match self {
            CpePart::Hardware => 'h',
            CpePart::OperatingSystem => 'o',
            CpePart::Application => 'a',
        }
    }

    /// Parses the single-letter code used in CPE 2.2 URIs.
    pub fn from_code(code: char) -> Option<Self> {
        match code {
            'h' => Some(CpePart::Hardware),
            'o' => Some(CpePart::OperatingSystem),
            'a' => Some(CpePart::Application),
            _ => None,
        }
    }
}

impl fmt::Display for CpePart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpePart::Hardware => f.write_str("hardware"),
            CpePart::OperatingSystem => f.write_str("operating system"),
            CpePart::Application => f.write_str("application"),
        }
    }
}

/// A parsed CPE 2.2 URI.
///
/// The URI grammar is
/// `cpe:/part:vendor:product[:version[:update[:edition[:language]]]]`; empty
/// trailing components may be omitted. Components are stored in their decoded
/// form (lower-cased, `%XX` escapes resolved).
///
/// # Example
///
/// ```
/// use nvd_model::{Cpe, CpePart};
///
/// # fn main() -> Result<(), nvd_model::ModelError> {
/// let cpe: Cpe = "cpe:/o:redhat:enterprise_linux:5.0".parse()?;
/// assert_eq!(cpe.part(), CpePart::OperatingSystem);
/// assert_eq!(cpe.vendor(), "redhat");
/// assert_eq!(cpe.product(), "enterprise_linux");
/// assert_eq!(cpe.version(), Some("5.0"));
/// assert_eq!(cpe.to_string(), "cpe:/o:redhat:enterprise_linux:5.0");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Cpe {
    part: CpePart,
    vendor: String,
    product: String,
    version: Option<String>,
    update: Option<String>,
    edition: Option<String>,
    language: Option<String>,
}

impl Cpe {
    /// Creates a CPE from its part, vendor and product, without version
    /// information.
    ///
    /// # Example
    ///
    /// ```
    /// use nvd_model::{Cpe, CpePart};
    /// let cpe = Cpe::new(CpePart::OperatingSystem, "openbsd", "openbsd");
    /// assert_eq!(cpe.to_string(), "cpe:/o:openbsd:openbsd");
    /// ```
    pub fn new(part: CpePart, vendor: impl Into<String>, product: impl Into<String>) -> Self {
        Cpe {
            part,
            vendor: normalize_component(&vendor.into()),
            product: normalize_component(&product.into()),
            version: None,
            update: None,
            edition: None,
            language: None,
        }
    }

    /// Returns a copy of this CPE with the given version component.
    ///
    /// # Example
    ///
    /// ```
    /// use nvd_model::{Cpe, CpePart};
    /// let cpe = Cpe::new(CpePart::OperatingSystem, "debian", "debian_linux")
    ///     .with_version("4.0");
    /// assert_eq!(cpe.version(), Some("4.0"));
    /// ```
    pub fn with_version(mut self, version: impl Into<String>) -> Self {
        self.version = Some(normalize_component(&version.into()));
        self
    }

    /// The part (hardware / operating system / application).
    pub fn part(&self) -> CpePart {
        self.part
    }

    /// The vendor component (e.g. `microsoft`).
    pub fn vendor(&self) -> &str {
        &self.vendor
    }

    /// The product component (e.g. `windows_2000`).
    pub fn product(&self) -> &str {
        &self.product
    }

    /// The version component, if present.
    pub fn version(&self) -> Option<&str> {
        self.version.as_deref()
    }

    /// The update component, if present.
    pub fn update(&self) -> Option<&str> {
        self.update.as_deref()
    }

    /// The edition component, if present.
    pub fn edition(&self) -> Option<&str> {
        self.edition.as_deref()
    }

    /// The language component, if present.
    pub fn language(&self) -> Option<&str> {
        self.language.as_deref()
    }

    /// Whether this CPE describes an operating system platform.
    ///
    /// This is the filter applied in Section III-A of the paper.
    pub fn is_operating_system(&self) -> bool {
        self.part == CpePart::OperatingSystem
    }

    /// Whether `other` matches this CPE when this CPE is interpreted as a
    /// pattern: every component present in `self` must be equal in `other`;
    /// components absent from `self` match anything.
    ///
    /// # Example
    ///
    /// ```
    /// use nvd_model::Cpe;
    /// # fn main() -> Result<(), nvd_model::ModelError> {
    /// let pattern: Cpe = "cpe:/o:debian:debian_linux".parse()?;
    /// let concrete: Cpe = "cpe:/o:debian:debian_linux:4.0".parse()?;
    /// assert!(pattern.matches(&concrete));
    /// assert!(!concrete.matches(&pattern));
    /// # Ok(())
    /// # }
    /// ```
    pub fn matches(&self, other: &Cpe) -> bool {
        fn component_matches(pattern: &Option<String>, value: &Option<String>) -> bool {
            match pattern {
                None => true,
                Some(p) => value.as_deref() == Some(p.as_str()),
            }
        }
        self.part == other.part
            && self.vendor == other.vendor
            && self.product == other.product
            && component_matches(&self.version, &other.version)
            && component_matches(&self.update, &other.update)
            && component_matches(&self.edition, &other.edition)
            && component_matches(&self.language, &other.language)
    }
}

/// Lower-cases a component and decodes `%XX` escapes (best-effort; invalid
/// escapes are kept verbatim).
fn normalize_component(raw: &str) -> String {
    let lower = raw.to_ascii_lowercase();
    if !lower.contains('%') {
        return lower;
    }
    let bytes = lower.as_bytes();
    let mut out = String::with_capacity(lower.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 2 < bytes.len() {
            let hex = &lower[i + 1..i + 3];
            if let Ok(v) = u8::from_str_radix(hex, 16) {
                out.push(v as char);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i] as char);
        i += 1;
    }
    out
}

/// Percent-encodes the characters CPE 2.2 reserves (`:` and `%`).
fn encode_component(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for ch in raw.chars() {
        match ch {
            ':' => out.push_str("%3a"),
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            _ => out.push(ch),
        }
    }
    out
}

impl fmt::Display for Cpe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cpe:/{}:{}:{}",
            self.part.code(),
            encode_component(&self.vendor),
            encode_component(&self.product)
        )?;
        // Trailing empty components are omitted, as NVD does.
        let tail = [&self.version, &self.update, &self.edition, &self.language];
        let last_present = tail.iter().rposition(|c| c.is_some());
        if let Some(last) = last_present {
            for component in &tail[..=last] {
                match component {
                    Some(value) => write!(f, ":{}", encode_component(value))?,
                    None => write!(f, ":")?,
                }
            }
        }
        Ok(())
    }
}

impl FromStr for Cpe {
    type Err = ModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |reason| ModelError::ParseCpe {
            input: s.to_string(),
            reason,
        };
        let rest = s
            .strip_prefix("cpe:/")
            .ok_or_else(|| err("missing \"cpe:/\" prefix"))?;
        let mut parts = rest.split(':');
        let part_code = parts.next().ok_or_else(|| err("missing part"))?;
        if part_code.len() != 1 {
            return Err(err("part must be a single character (h, o or a)"));
        }
        let part = CpePart::from_code(part_code.chars().next().unwrap())
            .ok_or_else(|| err("part must be one of h, o, a"))?;
        let vendor = parts.next().ok_or_else(|| err("missing vendor"))?;
        if vendor.is_empty() {
            return Err(err("vendor must not be empty"));
        }
        let product = parts.next().ok_or_else(|| err("missing product"))?;
        if product.is_empty() {
            return Err(err("product must not be empty"));
        }
        let optional = |value: Option<&str>| -> Option<String> {
            value.filter(|v| !v.is_empty()).map(normalize_component)
        };
        let version = optional(parts.next());
        let update = optional(parts.next());
        let edition = optional(parts.next());
        let language = optional(parts.next());
        if parts.next().is_some() {
            return Err(err("too many components (CPE 2.2 has at most seven)"));
        }
        Ok(Cpe {
            part,
            vendor: normalize_component(vendor),
            product: normalize_component(product),
            version,
            update,
            edition,
            language,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parse_minimal() {
        let cpe: Cpe = "cpe:/o:openbsd:openbsd".parse().unwrap();
        assert_eq!(cpe.part(), CpePart::OperatingSystem);
        assert_eq!(cpe.vendor(), "openbsd");
        assert_eq!(cpe.product(), "openbsd");
        assert_eq!(cpe.version(), None);
    }

    #[test]
    fn parse_full() {
        let cpe: Cpe = "cpe:/o:microsoft:windows_2000::sp4:server:en"
            .parse()
            .unwrap();
        assert_eq!(cpe.version(), None);
        assert_eq!(cpe.update(), Some("sp4"));
        assert_eq!(cpe.edition(), Some("server"));
        assert_eq!(cpe.language(), Some("en"));
    }

    #[test]
    fn parse_application_part() {
        let cpe: Cpe = "cpe:/a:mysql:mysql:5.0".parse().unwrap();
        assert_eq!(cpe.part(), CpePart::Application);
        assert!(!cpe.is_operating_system());
    }

    #[test]
    fn rejects_bad_prefix_and_part() {
        assert!("cpe:2.3:o:x:y".parse::<Cpe>().is_err());
        assert!("cpe:/q:x:y".parse::<Cpe>().is_err());
        assert!("cpe:/o".parse::<Cpe>().is_err());
        assert!("cpe:/o:x".parse::<Cpe>().is_err());
        assert!("cpe:/o::y".parse::<Cpe>().is_err());
        assert!("cpe:/o:v:p:1:2:3:4:5".parse::<Cpe>().is_err());
    }

    #[test]
    fn display_omits_trailing_empty_components() {
        let cpe: Cpe = "cpe:/o:redhat:enterprise_linux:5.0".parse().unwrap();
        assert_eq!(cpe.to_string(), "cpe:/o:redhat:enterprise_linux:5.0");
        let cpe: Cpe = "cpe:/o:microsoft:windows_2000::sp4".parse().unwrap();
        assert_eq!(cpe.to_string(), "cpe:/o:microsoft:windows_2000::sp4");
    }

    #[test]
    fn normalization_lowercases_and_decodes() {
        let cpe: Cpe = "cpe:/o:Microsoft:Windows_2000".parse().unwrap();
        assert_eq!(cpe.vendor(), "microsoft");
        let cpe: Cpe = "cpe:/o:sun:solaris:9.0%20x86".parse().unwrap();
        assert_eq!(cpe.version(), Some("9.0 x86"));
    }

    #[test]
    fn pattern_matching() {
        let pattern: Cpe = "cpe:/o:debian:debian_linux".parse().unwrap();
        let v40: Cpe = "cpe:/o:debian:debian_linux:4.0".parse().unwrap();
        let other: Cpe = "cpe:/o:canonical:ubuntu_linux:8.04".parse().unwrap();
        assert!(pattern.matches(&v40));
        assert!(pattern.matches(&pattern));
        assert!(!pattern.matches(&other));
        assert!(!v40.matches(&pattern));
    }

    #[test]
    fn builder_style_constructors() {
        let cpe = Cpe::new(CpePart::OperatingSystem, "NetBSD", "NetBSD").with_version("3.0.1");
        assert_eq!(cpe.to_string(), "cpe:/o:netbsd:netbsd:3.0.1");
    }

    fn component_strategy() -> impl Strategy<Value = String> {
        "[a-z0-9_.]{1,12}"
    }

    proptest! {
        #[test]
        fn roundtrip(vendor in component_strategy(),
                     product in component_strategy(),
                     version in proptest::option::of(component_strategy())) {
            let mut cpe = Cpe::new(CpePart::OperatingSystem, vendor, product);
            if let Some(v) = version {
                cpe = cpe.with_version(v);
            }
            let parsed: Cpe = cpe.to_string().parse().unwrap();
            prop_assert_eq!(cpe, parsed);
        }

        #[test]
        fn matches_is_reflexive(vendor in component_strategy(), product in component_strategy()) {
            let cpe = Cpe::new(CpePart::OperatingSystem, vendor, product);
            prop_assert!(cpe.matches(&cpe));
        }
    }
}
