//! Fully parsed NVD vulnerability entries.
//!
//! A [`VulnerabilityEntry`] carries everything the study needs about a CVE:
//! its identifier, publication date, summary, CVSS vector, validity flag
//! (Table I), the OS-part classification of Section III-B (Table II) and the
//! list of affected platforms clustered into [`OsDistribution`]s.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::{AccessVector, Cpe, CveId, CvssV2, Date, ModelError, OsDistribution, OsSet};

/// The OS component class a vulnerability belongs to (Section III-B).
///
/// The paper manually classified all 1887 valid entries into these four
/// classes; Table II reports the per-OS distribution and Table IV the
/// per-class breakdown of shared vulnerabilities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OsPart {
    /// Drivers for network/video/audio cards, web cams, UPnP devices, …
    Driver,
    /// TCP/IP stack and other OS-dependent protocols, file systems, process
    /// and task management, core libraries, processor-architecture issues.
    Kernel,
    /// Software required for common OS functionality: login, shells, basic
    /// daemons — everything installed by default.
    SystemSoftware,
    /// Software shipped with the OS but not needed for basic operation:
    /// DBMSes, browsers, mail/FTP clients and servers, media players,
    /// language runtimes, antivirus, Kerberos/LDAP, games, …
    Application,
}

impl OsPart {
    /// The four classes in the order used by the paper's tables.
    pub const ALL: [OsPart; 4] = [
        OsPart::Driver,
        OsPart::Kernel,
        OsPart::SystemSoftware,
        OsPart::Application,
    ];

    /// Short label used in table headers (`Driver`, `Kernel`, `Sys. Soft.`,
    /// `App.`).
    pub fn label(&self) -> &'static str {
        match self {
            OsPart::Driver => "Driver",
            OsPart::Kernel => "Kernel",
            OsPart::SystemSoftware => "Sys. Soft.",
            OsPart::Application => "App.",
        }
    }

    /// Whether a vulnerability of this class survives the paper's
    /// *No Applications* filter (Thin Server / Isolated Thin Server).
    pub fn is_base_system(&self) -> bool {
        !matches!(self, OsPart::Application)
    }
}

impl fmt::Display for OsPart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for OsPart {
    type Err = ModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let normalized: String = s
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect::<String>()
            .to_ascii_lowercase();
        match normalized.as_str() {
            "driver" | "drivers" => Ok(OsPart::Driver),
            "kernel" => Ok(OsPart::Kernel),
            "systemsoftware" | "syssoft" | "system" => Ok(OsPart::SystemSoftware),
            "application" | "applications" | "app" => Ok(OsPart::Application),
            _ => Err(ModelError::InvalidEntry {
                reason: "unknown OS part class",
            }),
        }
    }
}

/// The validity of an NVD entry for the purposes of the study (Table I).
///
/// Entries whose description contains *Unknown* or *Unspecified* tags, or the
/// `**DISPUTED**` marker, were excluded from the paper's analysis
/// (Section III-A).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum Validity {
    /// A valid vulnerability, included in the study.
    #[default]
    Valid,
    /// NVD does not know exactly where the vulnerability occurs.
    Unknown,
    /// NVD does not know why the vulnerability exists.
    Unspecified,
    /// The vendor disputes the existence of the vulnerability.
    Disputed,
}

impl Validity {
    /// The four validity classes in Table I column order.
    pub const ALL: [Validity; 4] = [
        Validity::Valid,
        Validity::Unknown,
        Validity::Unspecified,
        Validity::Disputed,
    ];

    /// Whether entries with this validity are kept by the study.
    pub fn is_valid(&self) -> bool {
        matches!(self, Validity::Valid)
    }

    /// Infers the validity from an entry summary, reproducing the manual
    /// inspection of Section III-A: summaries containing `**DISPUTED**` are
    /// disputed, summaries mentioning an *unknown vulnerability* are unknown,
    /// and summaries mentioning an *unspecified vulnerability* are
    /// unspecified.
    ///
    /// # Example
    ///
    /// ```
    /// use nvd_model::Validity;
    /// assert_eq!(
    ///     Validity::from_summary("** DISPUTED ** buffer overflow in foo"),
    ///     Validity::Disputed
    /// );
    /// assert_eq!(
    ///     Validity::from_summary("Unspecified vulnerability in the kernel"),
    ///     Validity::Unspecified
    /// );
    /// assert_eq!(
    ///     Validity::from_summary("Buffer overflow in the TCP/IP stack"),
    ///     Validity::Valid
    /// );
    /// ```
    pub fn from_summary(summary: &str) -> Validity {
        let lower = summary.to_ascii_lowercase();
        if lower.contains("** disputed") || lower.contains("**disputed") {
            Validity::Disputed
        } else if lower.contains("unspecified vulnerability") {
            Validity::Unspecified
        } else if lower.contains("unknown vulnerability") || lower.contains("unknown impact") {
            Validity::Unknown
        } else {
            Validity::Valid
        }
    }
}

impl fmt::Display for Validity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Validity::Valid => f.write_str("Valid"),
            Validity::Unknown => f.write_str("Unknown"),
            Validity::Unspecified => f.write_str("Unspecified"),
            Validity::Disputed => f.write_str("Disputed"),
        }
    }
}

/// One affected platform of a vulnerability: the raw CPE, the clustered OS
/// distribution (if the CPE is one of the 11 studied OSes) and the affected
/// version strings.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AffectedProduct {
    cpe: Cpe,
    os: Option<OsDistribution>,
    versions: Vec<String>,
}

impl AffectedProduct {
    /// Creates an affected-product record from a CPE, clustering it into an
    /// [`OsDistribution`] when possible.
    pub fn new(cpe: Cpe) -> Self {
        let os = OsDistribution::from_cpe(&cpe);
        let versions = cpe
            .version()
            .map(|v| vec![v.to_string()])
            .unwrap_or_default();
        AffectedProduct { cpe, os, versions }
    }

    /// Creates an affected-product record directly from an OS distribution,
    /// using its canonical CPE.
    pub fn from_os(os: OsDistribution) -> Self {
        AffectedProduct {
            cpe: os.canonical_cpe(),
            os: Some(os),
            versions: Vec::new(),
        }
    }

    /// Creates an affected-product record for a specific OS release.
    pub fn from_os_version(os: OsDistribution, version: impl Into<String>) -> Self {
        let version = version.into();
        AffectedProduct {
            cpe: os.canonical_cpe().with_version(version.clone()),
            os: Some(os),
            versions: vec![version],
        }
    }

    /// The raw CPE.
    pub fn cpe(&self) -> &Cpe {
        &self.cpe
    }

    /// The clustered OS distribution, if the platform is one of the 11
    /// studied operating systems.
    pub fn os(&self) -> Option<OsDistribution> {
        self.os
    }

    /// The affected version strings (possibly empty, meaning "all versions").
    pub fn versions(&self) -> &[String] {
        &self.versions
    }

    /// Adds an affected version string.
    pub fn add_version(&mut self, version: impl Into<String>) {
        let version = version.into();
        if !self.versions.contains(&version) {
            self.versions.push(version);
        }
    }

    /// Whether a given release version is affected. An empty version list is
    /// interpreted as "all versions affected".
    pub fn affects_version(&self, version: &str) -> bool {
        self.versions.is_empty() || self.versions.iter().any(|v| v == version)
    }
}

/// A fully parsed NVD vulnerability entry.
///
/// Use [`VulnerabilityEntry::builder`] to construct entries; the builder
/// validates that the identifier and publication date are coherent.
///
/// # Example
///
/// ```
/// use nvd_model::{CveId, CvssV2, Date, OsDistribution, OsPart, VulnerabilityEntry};
///
/// # fn main() -> Result<(), nvd_model::ModelError> {
/// let entry = VulnerabilityEntry::builder(CveId::new(2008, 4609))
///     .published(Date::new(2008, 10, 20)?)
///     .summary("The TCP implementation allows remote attackers to cause a denial of service")
///     .cvss("AV:N/AC:M/Au:N/C:N/I:N/A:C".parse::<CvssV2>()?)
///     .part(OsPart::Kernel)
///     .affects_os(OsDistribution::Windows2000)
///     .affects_os(OsDistribution::FreeBsd)
///     .build()?;
/// assert_eq!(entry.affected_os_set().len(), 2);
/// assert!(entry.is_remotely_exploitable());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VulnerabilityEntry {
    id: CveId,
    published: Date,
    summary: String,
    cvss: Option<CvssV2>,
    part: Option<OsPart>,
    validity: Validity,
    affected: Vec<AffectedProduct>,
}

impl VulnerabilityEntry {
    /// Starts building an entry for the given CVE identifier.
    pub fn builder(id: CveId) -> VulnerabilityEntryBuilder {
        VulnerabilityEntryBuilder::new(id)
    }

    /// The CVE identifier.
    pub fn id(&self) -> CveId {
        self.id
    }

    /// The publication date.
    pub fn published(&self) -> Date {
        self.published
    }

    /// The publication year (used by Figure 2 and the Table V split).
    pub fn year(&self) -> u16 {
        self.published.year()
    }

    /// The entry summary / description.
    pub fn summary(&self) -> &str {
        &self.summary
    }

    /// The CVSS v2 base vector, if one was published.
    pub fn cvss(&self) -> Option<&CvssV2> {
        self.cvss.as_ref()
    }

    /// The OS-part classification (Section III-B), if assigned.
    pub fn part(&self) -> Option<OsPart> {
        self.part
    }

    /// The validity flag (Table I).
    pub fn validity(&self) -> Validity {
        self.validity
    }

    /// Whether the entry is kept by the study (validity is `Valid`).
    pub fn is_valid(&self) -> bool {
        self.validity.is_valid()
    }

    /// The affected platforms.
    pub fn affected(&self) -> &[AffectedProduct] {
        &self.affected
    }

    /// The set of studied OS distributions affected by this vulnerability.
    pub fn affected_os_set(&self) -> OsSet {
        self.affected.iter().filter_map(|p| p.os()).collect()
    }

    /// Whether the vulnerability affects the given distribution.
    pub fn affects(&self, os: OsDistribution) -> bool {
        self.affected.iter().any(|p| p.os() == Some(os))
    }

    /// Whether the vulnerability affects the given release of a distribution.
    pub fn affects_release(&self, os: OsDistribution, version: &str) -> bool {
        self.affected
            .iter()
            .any(|p| p.os() == Some(os) && p.affects_version(version))
    }

    /// The access vector, defaulting to [`AccessVector::Network`] when no
    /// CVSS vector was published (the conservative choice: without evidence
    /// to the contrary a vulnerability is assumed remotely exploitable).
    pub fn access_vector(&self) -> AccessVector {
        self.cvss
            .map(|c| c.access_vector())
            .unwrap_or(AccessVector::Network)
    }

    /// Whether the vulnerability is remotely exploitable (`Network` or
    /// `Adjacent Network` access vector) — the paper's *No Local* filter.
    pub fn is_remotely_exploitable(&self) -> bool {
        self.access_vector().is_remote()
    }

    /// Whether the vulnerability is in the base system (not an Application
    /// class vulnerability) — the paper's *No Applications* filter. Entries
    /// without a classification are treated as base-system vulnerabilities.
    pub fn is_base_system(&self) -> bool {
        self.part.map(|p| p.is_base_system()).unwrap_or(true)
    }

    /// Sets the OS-part classification, used by the classifier crate once a
    /// class has been assigned.
    pub fn set_part(&mut self, part: OsPart) {
        self.part = Some(part);
    }

    /// Sets the validity flag (used when re-inspecting summaries).
    pub fn set_validity(&mut self, validity: Validity) {
        self.validity = validity;
    }
}

/// Builder for [`VulnerabilityEntry`], created by
/// [`VulnerabilityEntry::builder`].
#[derive(Debug, Clone)]
pub struct VulnerabilityEntryBuilder {
    id: CveId,
    published: Option<Date>,
    summary: String,
    cvss: Option<CvssV2>,
    part: Option<OsPart>,
    validity: Option<Validity>,
    affected: Vec<AffectedProduct>,
}

impl VulnerabilityEntryBuilder {
    fn new(id: CveId) -> Self {
        VulnerabilityEntryBuilder {
            id,
            published: None,
            summary: String::new(),
            cvss: None,
            part: None,
            validity: None,
            affected: Vec::new(),
        }
    }

    /// Sets the publication date. Defaults to January 1st of the CVE year.
    pub fn published(mut self, date: Date) -> Self {
        self.published = Some(date);
        self
    }

    /// Sets the summary text. If no explicit validity is set, the validity is
    /// inferred from the summary via [`Validity::from_summary`].
    pub fn summary(mut self, summary: impl Into<String>) -> Self {
        self.summary = summary.into();
        self
    }

    /// Sets the CVSS v2 base vector.
    pub fn cvss(mut self, cvss: CvssV2) -> Self {
        self.cvss = Some(cvss);
        self
    }

    /// Sets the OS-part classification.
    pub fn part(mut self, part: OsPart) -> Self {
        self.part = Some(part);
        self
    }

    /// Overrides the validity flag inferred from the summary.
    pub fn validity(mut self, validity: Validity) -> Self {
        self.validity = Some(validity);
        self
    }

    /// Adds an affected platform from a raw CPE.
    pub fn affects_cpe(mut self, cpe: Cpe) -> Self {
        self.affected.push(AffectedProduct::new(cpe));
        self
    }

    /// Adds a fully constructed affected-product record (keeps every version
    /// the record carries, unlike [`Self::affects_cpe`]).
    pub fn affects_product(mut self, product: AffectedProduct) -> Self {
        self.affected.push(product);
        self
    }

    /// Adds an affected OS distribution (all versions).
    pub fn affects_os(mut self, os: OsDistribution) -> Self {
        self.affected.push(AffectedProduct::from_os(os));
        self
    }

    /// Adds an affected OS release.
    pub fn affects_os_version(mut self, os: OsDistribution, version: impl Into<String>) -> Self {
        self.affected
            .push(AffectedProduct::from_os_version(os, version));
        self
    }

    /// Adds every member of an [`OsSet`] as an affected platform.
    pub fn affects_set(mut self, set: OsSet) -> Self {
        for os in set {
            self.affected.push(AffectedProduct::from_os(os));
        }
        self
    }

    /// Builds the entry.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidEntry`] if the publication year is more
    /// than one year before the CVE identifier year (NVD entries are never
    /// published before being assigned an identifier; a one-year slack is
    /// allowed because identifiers are sometimes reserved late in a year and
    /// published in January).
    pub fn build(self) -> Result<VulnerabilityEntry, ModelError> {
        let published = self
            .published
            .unwrap_or_else(|| Date::from_year(self.id.year()));
        if published.year() + 1 < self.id.year() {
            return Err(ModelError::InvalidEntry {
                reason: "publication date is before the CVE identifier year",
            });
        }
        let validity = self
            .validity
            .unwrap_or_else(|| Validity::from_summary(&self.summary));
        Ok(VulnerabilityEntry {
            id: self.id,
            published,
            summary: self.summary,
            cvss: self.cvss,
            part: self.part,
            validity,
            affected: self.affected,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessComplexity, Authentication, ImpactMetric};

    fn remote_cvss() -> CvssV2 {
        CvssV2::new(
            AccessVector::Network,
            AccessComplexity::Low,
            Authentication::None,
            ImpactMetric::Partial,
            ImpactMetric::Partial,
            ImpactMetric::Partial,
        )
    }

    fn local_cvss() -> CvssV2 {
        CvssV2::new(
            AccessVector::Local,
            AccessComplexity::Low,
            Authentication::None,
            ImpactMetric::Partial,
            ImpactMetric::Partial,
            ImpactMetric::Partial,
        )
    }

    #[test]
    fn builder_produces_consistent_entry() {
        let entry = VulnerabilityEntry::builder(CveId::new(2008, 1447))
            .published(Date::new(2008, 7, 8).unwrap())
            .summary("DNS protocol cache poisoning")
            .cvss(remote_cvss())
            .part(OsPart::SystemSoftware)
            .affects_os(OsDistribution::Debian)
            .affects_os(OsDistribution::RedHat)
            .build()
            .unwrap();
        assert_eq!(entry.id(), CveId::new(2008, 1447));
        assert_eq!(entry.year(), 2008);
        assert_eq!(entry.affected_os_set().len(), 2);
        assert!(entry.affects(OsDistribution::Debian));
        assert!(!entry.affects(OsDistribution::Windows2000));
        assert!(entry.is_valid());
        assert!(entry.is_base_system());
        assert!(entry.is_remotely_exploitable());
    }

    #[test]
    fn default_publication_date_is_cve_year() {
        let entry = VulnerabilityEntry::builder(CveId::new(2005, 100))
            .build()
            .unwrap();
        assert_eq!(entry.year(), 2005);
    }

    #[test]
    fn publication_before_identifier_year_is_rejected() {
        let result = VulnerabilityEntry::builder(CveId::new(2008, 1))
            .published(Date::new(2005, 1, 1).unwrap())
            .build();
        assert!(result.is_err());
        // One year of slack is allowed.
        assert!(VulnerabilityEntry::builder(CveId::new(2008, 1))
            .published(Date::new(2007, 12, 20).unwrap())
            .build()
            .is_ok());
    }

    #[test]
    fn validity_inferred_from_summary() {
        let entry = VulnerabilityEntry::builder(CveId::new(2006, 10))
            .summary("** DISPUTED ** format string issue in syslogd")
            .build()
            .unwrap();
        assert_eq!(entry.validity(), Validity::Disputed);
        assert!(!entry.is_valid());

        let entry = VulnerabilityEntry::builder(CveId::new(2006, 11))
            .summary("Unknown vulnerability in the kernel allows attackers to gain privileges")
            .build()
            .unwrap();
        assert_eq!(entry.validity(), Validity::Unknown);

        let entry = VulnerabilityEntry::builder(CveId::new(2006, 12))
            .summary("Unspecified vulnerability in Solaris RPC services")
            .build()
            .unwrap();
        assert_eq!(entry.validity(), Validity::Unspecified);
    }

    #[test]
    fn explicit_validity_wins_over_summary() {
        let entry = VulnerabilityEntry::builder(CveId::new(2006, 13))
            .summary("** DISPUTED ** something")
            .validity(Validity::Valid)
            .build()
            .unwrap();
        assert!(entry.is_valid());
    }

    #[test]
    fn application_part_filtered_by_thin_server() {
        let entry = VulnerabilityEntry::builder(CveId::new(2004, 5))
            .part(OsPart::Application)
            .cvss(remote_cvss())
            .build()
            .unwrap();
        assert!(!entry.is_base_system());
        let entry = VulnerabilityEntry::builder(CveId::new(2004, 6))
            .part(OsPart::Kernel)
            .cvss(local_cvss())
            .build()
            .unwrap();
        assert!(entry.is_base_system());
        assert!(!entry.is_remotely_exploitable());
    }

    #[test]
    fn missing_cvss_defaults_to_remote() {
        let entry = VulnerabilityEntry::builder(CveId::new(2004, 7))
            .build()
            .unwrap();
        assert_eq!(entry.access_vector(), AccessVector::Network);
        assert!(entry.is_remotely_exploitable());
    }

    #[test]
    fn affected_release_matching() {
        let entry = VulnerabilityEntry::builder(CveId::new(2007, 42))
            .affects_os_version(OsDistribution::Debian, "4.0")
            .affects_os(OsDistribution::RedHat)
            .build()
            .unwrap();
        assert!(entry.affects_release(OsDistribution::Debian, "4.0"));
        assert!(!entry.affects_release(OsDistribution::Debian, "3.0"));
        // RedHat has no version restriction: every release matches.
        assert!(entry.affects_release(OsDistribution::RedHat, "5.0"));
    }

    #[test]
    fn affected_product_from_cpe_clusters_os() {
        let cpe: Cpe = "cpe:/o:canonical:ubuntu_linux:8.04".parse().unwrap();
        let product = AffectedProduct::new(cpe);
        assert_eq!(product.os(), Some(OsDistribution::Ubuntu));
        assert_eq!(product.versions(), ["8.04"]);
        let app_cpe: Cpe = "cpe:/a:isc:bind:9.4".parse().unwrap();
        let product = AffectedProduct::new(app_cpe);
        assert_eq!(product.os(), None);
    }

    #[test]
    fn os_part_labels_and_parsing() {
        assert_eq!(OsPart::SystemSoftware.label(), "Sys. Soft.");
        assert_eq!("kernel".parse::<OsPart>().unwrap(), OsPart::Kernel);
        assert_eq!(
            "Sys. Soft.".parse::<OsPart>().unwrap(),
            OsPart::SystemSoftware
        );
        assert_eq!(
            "Applications".parse::<OsPart>().unwrap(),
            OsPart::Application
        );
        assert!("firmware".parse::<OsPart>().is_err());
    }

    #[test]
    fn affects_set_adds_every_member() {
        let set = OsSet::from_iter([
            OsDistribution::OpenBsd,
            OsDistribution::NetBsd,
            OsDistribution::FreeBsd,
        ]);
        let entry = VulnerabilityEntry::builder(CveId::new(2003, 1))
            .affects_set(set)
            .build()
            .unwrap();
        assert_eq!(entry.affected_os_set(), set);
    }
}
