//! CVE identifiers (`CVE-YEAR-NUMBER`).

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::ModelError;

/// A Common Vulnerabilities and Exposures identifier, e.g. `CVE-2008-4609`.
///
/// The NVD names every entry with a `CVE-YEAR-NUMBER` identifier (Section III
/// of the paper). `CveId` stores the two numeric components and orders
/// identifiers chronologically: first by year, then by sequence number.
///
/// # Example
///
/// ```
/// use nvd_model::CveId;
///
/// # fn main() -> Result<(), nvd_model::ModelError> {
/// let id: CveId = "CVE-2008-4609".parse()?;
/// assert_eq!(id.year(), 2008);
/// assert_eq!(id.number(), 4609);
/// assert_eq!(id.to_string(), "CVE-2008-4609");
/// assert!(id > CveId::new(2007, 5365));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CveId {
    year: u16,
    number: u32,
}

impl CveId {
    /// Creates an identifier from its year and sequence number.
    ///
    /// # Example
    ///
    /// ```
    /// use nvd_model::CveId;
    /// let id = CveId::new(2008, 1447);
    /// assert_eq!(id.to_string(), "CVE-2008-1447");
    /// ```
    pub fn new(year: u16, number: u32) -> Self {
        CveId { year, number }
    }

    /// The year component of the identifier.
    pub fn year(&self) -> u16 {
        self.year
    }

    /// The sequence-number component of the identifier.
    pub fn number(&self) -> u32 {
        self.number
    }
}

impl fmt::Display for CveId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // CVE numbers are zero padded to at least four digits (CVE-1999-0001).
        write!(f, "CVE-{}-{:04}", self.year, self.number)
    }
}

impl FromStr for CveId {
    type Err = ModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |reason| ModelError::ParseCveId {
            input: s.to_string(),
            reason,
        };
        let rest = s
            .strip_prefix("CVE-")
            .or_else(|| s.strip_prefix("cve-"))
            .ok_or_else(|| err("missing \"CVE-\" prefix"))?;
        let (year, number) = rest
            .split_once('-')
            .ok_or_else(|| err("missing \"-\" between year and number"))?;
        if year.len() != 4 {
            return Err(err("year must have exactly four digits"));
        }
        let year: u16 = year.parse().map_err(|_| err("year is not a number"))?;
        if number.is_empty() || number.len() > 9 {
            return Err(err("sequence number must have between 1 and 9 digits"));
        }
        let number: u32 = number
            .parse()
            .map_err(|_| err("sequence number is not a number"))?;
        Ok(CveId { year, number })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parse_canonical() {
        let id: CveId = "CVE-2008-4609".parse().unwrap();
        assert_eq!(id, CveId::new(2008, 4609));
    }

    #[test]
    fn parse_lowercase_prefix() {
        let id: CveId = "cve-2007-5365".parse().unwrap();
        assert_eq!(id, CveId::new(2007, 5365));
    }

    #[test]
    fn display_pads_to_four_digits() {
        assert_eq!(CveId::new(1999, 1).to_string(), "CVE-1999-0001");
        assert_eq!(CveId::new(2010, 123456).to_string(), "CVE-2010-123456");
    }

    #[test]
    fn ordering_is_chronological() {
        let a = CveId::new(2005, 9999);
        let b = CveId::new(2006, 1);
        assert!(a < b);
        assert!(CveId::new(2006, 2) > b);
    }

    #[test]
    fn rejects_missing_prefix() {
        assert!("2008-4609".parse::<CveId>().is_err());
    }

    #[test]
    fn rejects_short_year() {
        assert!("CVE-208-4609".parse::<CveId>().is_err());
    }

    #[test]
    fn rejects_non_numeric() {
        assert!("CVE-2008-46a9".parse::<CveId>().is_err());
        assert!("CVE-two-thousand".parse::<CveId>().is_err());
    }

    #[test]
    fn rejects_empty_number() {
        assert!("CVE-2008-".parse::<CveId>().is_err());
    }

    proptest! {
        #[test]
        fn roundtrip(year in 1990u16..2030, number in 1u32..1_000_000) {
            let id = CveId::new(year, number);
            let parsed: CveId = id.to_string().parse().unwrap();
            prop_assert_eq!(id, parsed);
        }

        #[test]
        fn ordering_matches_tuple(ya in 1990u16..2030, na in 1u32..99999,
                                  yb in 1990u16..2030, nb in 1u32..99999) {
            let a = CveId::new(ya, na);
            let b = CveId::new(yb, nb);
            prop_assert_eq!(a.cmp(&b), (ya, na).cmp(&(yb, nb)));
        }
    }
}
