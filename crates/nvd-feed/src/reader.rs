//! Reading NVD data feeds into model entries.
//!
//! [`FeedReader`] understands both feed layouts the study had to deal with:
//!
//! * **NVD 1.2** (`nvdcve-*.xml`): `<entry name="CVE-..." published="..."
//!   CVSS_vector="(...)"> <desc><descript>...</descript></desc>
//!   <vuln_soft><prod name="..." vendor="..."><vers num="..."/></prod>
//!   </vuln_soft> </entry>`
//! * **NVD 2.0** (`nvdcve-2.0-*.xml`): `<entry id="CVE-...">
//!   <vuln:vulnerable-software-list><vuln:product>cpe:/o:...</vuln:product>
//!   </vuln:vulnerable-software-list> <vuln:published-datetime>...
//!   <vuln:cvss><cvss:base_metrics>... <vuln:summary>...</entry>`
//!
//! Entries that cannot be parsed are either skipped (lenient mode, the
//! default — real feeds contain occasional malformed entries) or reported as
//! errors (strict mode, used in tests and by the synthetic-feed round-trip).

use std::fs;
use std::path::Path;

use nvd_model::VulnerabilityEntry;

use crate::schema::{FeedMetadata, RawEntry, RawProduct};
use crate::xml::{XmlEvent, XmlReader};
use crate::{FeedError, NameNormalizer};

/// Reads NVD XML feeds into [`VulnerabilityEntry`] values.
///
/// # Example
///
/// ```
/// use nvd_feed::FeedReader;
///
/// # fn main() -> Result<(), nvd_feed::FeedError> {
/// let xml = r#"
/// <nvd>
///   <entry id="CVE-2008-1447">
///     <vuln:vulnerable-software-list>
///       <vuln:product>cpe:/o:debian:debian_linux:4.0</vuln:product>
///     </vuln:vulnerable-software-list>
///     <vuln:published-datetime>2008-07-08T19:41:00.000-04:00</vuln:published-datetime>
///     <vuln:summary>DNS cache poisoning</vuln:summary>
///   </entry>
/// </nvd>"#;
/// let entries = FeedReader::new().read_from_str(xml)?;
/// assert_eq!(entries.len(), 1);
/// assert_eq!(entries[0].summary(), "DNS cache poisoning");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FeedReader {
    normalizer: NameNormalizer,
    strict: bool,
    skipped: usize,
}

impl Default for FeedReader {
    fn default() -> Self {
        FeedReader::new()
    }
}

impl FeedReader {
    /// Creates a lenient reader with the default alias normalizer.
    pub fn new() -> Self {
        FeedReader {
            normalizer: NameNormalizer::default(),
            strict: false,
            skipped: 0,
        }
    }

    /// Makes the reader strict: any entry that fails to parse aborts the
    /// whole read instead of being skipped.
    pub fn strict(mut self) -> Self {
        self.strict = true;
        self
    }

    /// Replaces the name normalizer.
    pub fn with_normalizer(mut self, normalizer: NameNormalizer) -> Self {
        self.normalizer = normalizer;
        self
    }

    /// Number of entries skipped by the last lenient read.
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    /// Reads a feed from a file on disk.
    ///
    /// # Errors
    ///
    /// Returns [`FeedError::Io`] if the file cannot be read, or any parse
    /// error a string read would produce.
    pub fn read_from_path(
        &mut self,
        path: impl AsRef<Path>,
    ) -> Result<Vec<VulnerabilityEntry>, FeedError> {
        let text = fs::read_to_string(path)?;
        self.read_from_str(&text)
    }

    /// Reads a feed from an XML string.
    ///
    /// # Errors
    ///
    /// Returns [`FeedError::Xml`] for malformed XML; in strict mode also
    /// [`FeedError::Schema`] / [`FeedError::Model`] for entries with invalid
    /// fields.
    pub fn read_from_str(&mut self, xml: &str) -> Result<Vec<VulnerabilityEntry>, FeedError> {
        let (entries, _metadata) = self.read_with_metadata(xml)?;
        Ok(entries)
    }

    /// Parses a **single** `<entry>…</entry>` (or self-closing `<entry/>`)
    /// XML fragment into an entry — the incremental entry point used by
    /// streaming feed ingestion, which carves complete entry elements out
    /// of the byte stream as it arrives and hands them over one at a time.
    ///
    /// Any prologue before the entry (XML declaration, comments, enclosing
    /// `<nvd>` open tag) is skipped. In lenient mode an entry with invalid
    /// fields returns `Ok(None)` and is counted by [`FeedReader::skipped`]
    /// (which, unlike the whole-document reads, accumulates across
    /// fragments); strict mode returns the error.
    ///
    /// # Errors
    ///
    /// Returns [`FeedError::Xml`] for malformed XML, [`FeedError::Schema`]
    /// if the fragment contains no `<entry>` element, and in strict mode
    /// any field-validation error.
    pub fn read_entry_str(
        &mut self,
        fragment: &str,
    ) -> Result<Option<VulnerabilityEntry>, FeedError> {
        let mut reader = XmlReader::new(fragment);
        while let Some(event) = reader.next_event()? {
            if let XmlEvent::StartElement {
                name,
                attributes,
                self_closing,
                ..
            } = event
            {
                if name == "entry" {
                    let raw = self.read_entry(&mut reader, &attributes, self_closing)?;
                    return match raw.to_entry(&self.normalizer) {
                        Ok(entry) => Ok(Some(entry)),
                        Err(err) if self.strict => Err(err),
                        Err(_) => {
                            self.skipped += 1;
                            Ok(None)
                        }
                    };
                }
            }
        }
        Err(FeedError::schema(
            None,
            "fragment contains no <entry> element",
        ))
    }

    /// Reads a feed and also returns document-level metadata.
    pub fn read_with_metadata(
        &mut self,
        xml: &str,
    ) -> Result<(Vec<VulnerabilityEntry>, FeedMetadata), FeedError> {
        self.skipped = 0;
        let mut reader = XmlReader::new(xml);
        let mut metadata = FeedMetadata::default();
        let mut entries = Vec::new();
        while let Some(event) = reader.next_event()? {
            match event {
                XmlEvent::StartElement {
                    name,
                    attributes,
                    self_closing,
                    ..
                } => match name.as_str() {
                    "nvd" => {
                        for (key, value) in &attributes {
                            match key.as_str() {
                                "nvd_xml_version" => metadata.xml_version = Some(value.clone()),
                                "pub_date" => metadata.published = Some(value.clone()),
                                _ => {}
                            }
                        }
                    }
                    "entry" => {
                        metadata.entry_count += 1;
                        let raw = self.read_entry(&mut reader, &attributes, self_closing)?;
                        match raw.to_entry(&self.normalizer) {
                            Ok(entry) => entries.push(entry),
                            Err(err) if self.strict => return Err(err),
                            Err(_) => self.skipped += 1,
                        }
                    }
                    _ => {}
                },
                XmlEvent::EndElement { .. } | XmlEvent::Text(_) => {}
            }
        }
        Ok((entries, metadata))
    }

    /// Parses a single `<entry>` element (either layout) into a [`RawEntry`].
    fn read_entry(
        &self,
        reader: &mut XmlReader<'_>,
        attributes: &[(String, String)],
        self_closing: bool,
    ) -> Result<RawEntry, FeedError> {
        let mut raw = RawEntry::default();
        for (key, value) in attributes {
            match key.as_str() {
                // 2.0 layout uses id=, 1.2 layout uses name=.
                "id" | "name" => raw.name = value.clone(),
                "published" => raw.published = Some(value.clone()),
                "CVSS_vector" => raw.cvss_vector = Some(value.clone()),
                _ => {}
            }
        }
        if self_closing {
            return Ok(raw);
        }
        // CVSS 2.0 metrics are assembled from individual elements.
        let mut access_vector: Option<String> = None;
        let mut access_complexity: Option<String> = None;
        let mut authentication: Option<String> = None;
        let mut conf = None;
        let mut integ = None;
        let mut avail = None;
        loop {
            match reader.next_event()? {
                Some(XmlEvent::StartElement {
                    name,
                    self_closing,
                    attributes,
                    ..
                }) => match name.as_str() {
                    "summary" | "descript"
                        if !self_closing => {
                            let text = reader.read_element_text(&name)?;
                            if raw.summary.is_empty() {
                                raw.summary = text;
                            }
                        }
                    "published-datetime"
                        if !self_closing => {
                            raw.published = Some(reader.read_element_text(&name)?);
                        }
                    "cve-id"
                        if !self_closing => {
                            let text = reader.read_element_text(&name)?;
                            if raw.name.is_empty() {
                                raw.name = text;
                            }
                        }
                    "product"
                        // 2.0 layout: <vuln:product>cpe:/o:...</vuln:product>
                        if !self_closing => {
                            let uri = reader.read_element_text(&name)?;
                            match RawProduct::from_cpe_uri(uri.trim()) {
                                Ok(product) => raw.products.push(product),
                                Err(err) if self.strict => return Err(err),
                                Err(_) => {}
                            }
                        }
                    "prod" => {
                        // 1.2 layout: <prod name="..." vendor="..."><vers num="..."/></prod>
                        let mut product = RawProduct::from_vendor_product("", "");
                        for (key, value) in &attributes {
                            match key.as_str() {
                                "name" => product.product = value.clone(),
                                "vendor" => product.vendor = value.clone(),
                                _ => {}
                            }
                        }
                        if !self_closing {
                            // Collect <vers num="..."/> children.
                            loop {
                                match reader.next_event()? {
                                    Some(XmlEvent::StartElement {
                                        name: child,
                                        attributes: child_attrs,
                                        self_closing: child_closed,
                                        ..
                                    }) => {
                                        if child == "vers" {
                                            if let Some((_, num)) =
                                                child_attrs.iter().find(|(k, _)| k == "num")
                                            {
                                                product.versions.push(num.clone());
                                            }
                                            if !child_closed {
                                                reader.skip_element("vers")?;
                                            }
                                        } else if !child_closed {
                                            reader.skip_element(&child)?;
                                        }
                                    }
                                    Some(XmlEvent::EndElement { name: end }) if end == "prod" => {
                                        break
                                    }
                                    Some(_) => {}
                                    None => {
                                        return Err(FeedError::schema(
                                            Some(&raw.name),
                                            "unterminated <prod> element",
                                        ))
                                    }
                                }
                            }
                        }
                        raw.products.push(product);
                    }
                    "access-vector"
                        if !self_closing => {
                            access_vector = Some(reader.read_element_text(&name)?);
                        }
                    "access-complexity"
                        if !self_closing => {
                            access_complexity = Some(reader.read_element_text(&name)?);
                        }
                    "authentication"
                        if !self_closing => {
                            authentication = Some(reader.read_element_text(&name)?);
                        }
                    "confidentiality-impact"
                        if !self_closing => {
                            conf = Some(reader.read_element_text(&name)?);
                        }
                    "integrity-impact"
                        if !self_closing => {
                            integ = Some(reader.read_element_text(&name)?);
                        }
                    "availability-impact"
                        if !self_closing => {
                            avail = Some(reader.read_element_text(&name)?);
                        }
                    _ => {
                        // Unknown container elements (vuln_soft,
                        // vulnerable-software-list, cvss, base_metrics, …)
                        // are descended into rather than skipped, so their
                        // children are still visited.
                    }
                },
                Some(XmlEvent::EndElement { name }) if name == "entry" => break,
                Some(_) => {}
                None => {
                    return Err(FeedError::schema(
                        Some(&raw.name),
                        "unterminated <entry> element",
                    ))
                }
            }
        }
        if raw.cvss_vector.is_none() {
            if let (Some(av), Some(ac), Some(au), Some(c), Some(i), Some(a)) = (
                &access_vector,
                &access_complexity,
                &authentication,
                &conf,
                &integ,
                &avail,
            ) {
                raw.cvss_vector = Some(format!(
                    "AV:{}/AC:{}/Au:{}/C:{}/I:{}/A:{}",
                    metric_code(av),
                    metric_code(ac),
                    metric_code(au),
                    metric_code(c),
                    metric_code(i),
                    metric_code(a)
                ));
            }
        }
        Ok(raw)
    }
}

/// Converts a spelled-out CVSS metric value (`NETWORK`, `SINGLE_INSTANCE`,
/// `PARTIAL`, …) to its single-letter vector code. Single letters pass
/// through unchanged.
fn metric_code(value: &str) -> String {
    let upper = value.trim().to_ascii_uppercase();
    let code = match upper.as_str() {
        "NETWORK" => "N",
        "ADJACENT_NETWORK" | "ADJACENT NETWORK" => "A",
        "LOCAL" => "L",
        "LOW" => "L",
        "MEDIUM" => "M",
        "HIGH" => "H",
        "NONE" => "N",
        "SINGLE" | "SINGLE_INSTANCE" => "S",
        "MULTIPLE" | "MULTIPLE_INSTANCES" => "M",
        "PARTIAL" => "P",
        "COMPLETE" => "C",
        other => other,
    };
    code.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvd_model::{AccessVector, CveId, OsDistribution};

    const FEED_20: &str = r#"<?xml version="1.0" encoding="UTF-8"?>
<nvd xmlns="http://scap.nist.gov/schema/feed/vulnerability/2.0" nvd_xml_version="2.0" pub_date="2010-09-30T05:00:00">
  <entry id="CVE-2008-1447">
    <vuln:vulnerable-software-list>
      <vuln:product>cpe:/o:debian:debian_linux:4.0</vuln:product>
      <vuln:product>cpe:/o:freebsd:freebsd:6.3</vuln:product>
      <vuln:product>cpe:/a:isc:bind:9.4</vuln:product>
    </vuln:vulnerable-software-list>
    <vuln:cve-id>CVE-2008-1447</vuln:cve-id>
    <vuln:published-datetime>2008-07-08T19:41:00.000-04:00</vuln:published-datetime>
    <vuln:cvss>
      <cvss:base_metrics>
        <cvss:access-vector>NETWORK</cvss:access-vector>
        <cvss:access-complexity>MEDIUM</cvss:access-complexity>
        <cvss:authentication>NONE</cvss:authentication>
        <cvss:confidentiality-impact>NONE</cvss:confidentiality-impact>
        <cvss:integrity-impact>PARTIAL</cvss:integrity-impact>
        <cvss:availability-impact>NONE</cvss:availability-impact>
      </cvss:base_metrics>
    </vuln:cvss>
    <vuln:summary>The DNS protocol implementation allows remote cache poisoning.</vuln:summary>
  </entry>
  <entry id="CVE-2008-4609">
    <vuln:vulnerable-software-list>
      <vuln:product>cpe:/o:microsoft:windows_2000</vuln:product>
      <vuln:product>cpe:/o:microsoft:windows_2003_server</vuln:product>
    </vuln:vulnerable-software-list>
    <vuln:published-datetime>2008-10-20T18:00:00.000-04:00</vuln:published-datetime>
    <vuln:summary>The TCP implementation allows a denial of service via crafted segments.</vuln:summary>
  </entry>
</nvd>"#;

    const FEED_12: &str = r#"<?xml version="1.0" encoding="UTF-8"?>
<nvd nvd_xml_version="1.2" pub_date="2002-12-31">
  <entry type="CVE" name="CVE-2002-0083" published="2002-03-07" CVSS_vector="(AV:N/AC:L/Au:N/C:C/I:C/A:C)">
    <desc>
      <descript source="cve">Off-by-one error in OpenSSH channel code allows remote attackers to execute arbitrary code.</descript>
    </desc>
    <vuln_soft>
      <prod name="openbsd" vendor="openbsd">
        <vers num="3.0"/>
        <vers num="3.1"/>
      </prod>
      <prod name="freebsd" vendor="freebsd"/>
    </vuln_soft>
  </entry>
</nvd>"#;

    #[test]
    fn parses_nvd_20_feed() {
        let mut reader = FeedReader::new();
        let (entries, metadata) = reader.read_with_metadata(FEED_20).unwrap();
        assert_eq!(metadata.xml_version.as_deref(), Some("2.0"));
        assert_eq!(metadata.entry_count, 2);
        assert_eq!(entries.len(), 2);

        let dns = &entries[0];
        assert_eq!(dns.id(), CveId::new(2008, 1447));
        assert_eq!(dns.year(), 2008);
        assert_eq!(dns.affected_os_set().len(), 2);
        assert!(dns.affects(OsDistribution::Debian));
        assert!(dns.affects(OsDistribution::FreeBsd));
        assert_eq!(dns.affected().len(), 3); // the BIND CPE is kept as a product
        assert_eq!(dns.cvss().unwrap().access_vector(), AccessVector::Network);
        assert!(dns.summary().contains("cache poisoning"));

        let tcp = &entries[1];
        assert_eq!(tcp.id(), CveId::new(2008, 4609));
        assert!(tcp.cvss().is_none());
        assert!(tcp.is_remotely_exploitable()); // defaults to remote
    }

    #[test]
    fn parses_nvd_12_feed() {
        let mut reader = FeedReader::new();
        let entries = reader.read_from_str(FEED_12).unwrap();
        assert_eq!(entries.len(), 1);
        let entry = &entries[0];
        assert_eq!(entry.id(), CveId::new(2002, 83));
        assert_eq!(entry.year(), 2002);
        assert!(entry.affects(OsDistribution::OpenBsd));
        assert!(entry.affects(OsDistribution::FreeBsd));
        assert!(entry.affects_release(OsDistribution::OpenBsd, "3.1"));
        assert!(!entry.affects_release(OsDistribution::OpenBsd, "3.5"));
        let cvss = entry.cvss().unwrap();
        assert_eq!(cvss.base_score(), 10.0);
        assert!(entry.summary().contains("OpenSSH"));
    }

    #[test]
    fn entry_fragments_parse_like_whole_documents() {
        let fragment = r#"<entry id="CVE-2008-1447">
            <vuln:vulnerable-software-list>
              <vuln:product>cpe:/o:debian:debian_linux:4.0</vuln:product>
            </vuln:vulnerable-software-list>
            <vuln:published-datetime>2008-07-08T19:41:00.000-04:00</vuln:published-datetime>
            <vuln:summary>DNS cache poisoning</vuln:summary>
          </entry>"#;
        let mut reader = FeedReader::new();
        let entry = reader.read_entry_str(fragment).unwrap().unwrap();
        assert_eq!(entry.id(), CveId::new(2008, 1447));
        assert!(entry.affects(OsDistribution::Debian));

        // Prologue before the entry is skipped; self-closing entries parse.
        let mut strict = FeedReader::new().strict();
        let fine = strict
            .read_entry_str(
                "<?xml version=\"1.0\"?><nvd>\
                 <entry id=\"CVE-2005-0001\"><vuln:summary>fine</vuln:summary></entry>",
            )
            .unwrap();
        assert_eq!(fine.unwrap().id(), CveId::new(2005, 1));
        // Lenient skips accumulate across fragments.
        assert_eq!(
            reader.read_entry_str("<entry id=\"NOT-A-CVE\"/>").unwrap(),
            None
        );
        assert_eq!(
            reader.read_entry_str("<entry id=\"ALSO-BAD\"/>").unwrap(),
            None
        );
        assert_eq!(reader.skipped(), 2);
        // A fragment with no entry at all is a schema error.
        assert!(matches!(
            reader.read_entry_str("<nvd></nvd>").unwrap_err(),
            FeedError::Schema { .. }
        ));
    }

    #[test]
    fn lenient_reader_skips_bad_entries() {
        let xml = r#"<nvd>
            <entry id="NOT-A-CVE"><vuln:summary>broken</vuln:summary></entry>
            <entry id="CVE-2005-0001"><vuln:summary>fine</vuln:summary></entry>
        </nvd>"#;
        let mut reader = FeedReader::new();
        let entries = reader.read_from_str(xml).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(reader.skipped(), 1);
    }

    #[test]
    fn strict_reader_rejects_bad_entries() {
        let xml = r#"<nvd><entry id="NOT-A-CVE"/></nvd>"#;
        let mut reader = FeedReader::new().strict();
        assert!(reader.read_from_str(xml).is_err());
    }

    #[test]
    fn malformed_xml_is_always_an_error() {
        let mut reader = FeedReader::new();
        assert!(reader.read_from_str("<nvd><entry id=CVE-2005-1").is_err());
    }

    #[test]
    fn empty_feed_produces_no_entries() {
        let mut reader = FeedReader::new();
        let (entries, metadata) = reader.read_with_metadata("<nvd/>").unwrap();
        assert!(entries.is_empty());
        assert_eq!(metadata.entry_count, 0);
    }

    #[test]
    fn read_from_path_reports_missing_file() {
        let mut reader = FeedReader::new();
        let err = reader.read_from_path("/nonexistent/feed.xml").unwrap_err();
        assert!(matches!(err, FeedError::Io(_)));
    }

    #[test]
    fn metric_code_translation() {
        assert_eq!(metric_code("NETWORK"), "N");
        assert_eq!(metric_code("ADJACENT_NETWORK"), "A");
        assert_eq!(metric_code("SINGLE_INSTANCE"), "S");
        assert_eq!(metric_code("PARTIAL"), "P");
        assert_eq!(metric_code("N"), "N");
    }
}
