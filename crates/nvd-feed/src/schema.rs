//! Raw (schema-level) representation of NVD feed entries.
//!
//! The feed reader first produces [`RawEntry`] values that mirror the XML
//! structure, and only then converts them into
//! [`nvd_model::VulnerabilityEntry`] values (validating identifiers, dates
//! and CVSS vectors and clustering CPEs into OS distributions). Keeping the
//! raw layer around makes the data-cleaning steps of Section III of the
//! paper — name normalization, duplicate merging, validity filtering —
//! testable in isolation.

use nvd_model::{
    AffectedProduct, Cpe, CpePart, CveId, CvssV2, Date, OsDistribution, VulnerabilityEntry,
};
use serde::{Deserialize, Serialize};

use crate::{FeedError, NameNormalizer};

/// Metadata about a parsed feed document.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FeedMetadata {
    /// The `nvd_xml_version` attribute of the root element, if present.
    pub xml_version: Option<String>,
    /// The `pub_date` attribute of the root element, if present.
    pub published: Option<String>,
    /// Number of `<entry>` elements found in the document.
    pub entry_count: usize,
}

/// One affected product as it appears in a feed, before clustering.
///
/// NVD 2.0 feeds carry full CPE URIs; 1.2 feeds carry `(vendor, product,
/// versions)` triples. Both are normalized into this struct.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawProduct {
    /// The CPE part code if known (`h`, `o` or `a`); 1.2 feeds do not carry
    /// it, in which case the product is assumed to be an OS when it clusters
    /// into one of the studied distributions.
    pub part: Option<char>,
    /// Vendor name as written in the feed.
    pub vendor: String,
    /// Product name as written in the feed.
    pub product: String,
    /// Affected version strings (may be empty, meaning all versions).
    pub versions: Vec<String>,
}

impl RawProduct {
    /// Creates a raw product from a full CPE URI string (2.0 feeds).
    ///
    /// # Errors
    ///
    /// Returns [`FeedError::Model`] if the URI cannot be parsed.
    pub fn from_cpe_uri(uri: &str) -> Result<Self, FeedError> {
        let cpe: Cpe = uri.parse()?;
        Ok(RawProduct {
            part: Some(cpe.part().code()),
            vendor: cpe.vendor().to_string(),
            product: cpe.product().to_string(),
            versions: cpe
                .version()
                .map(|v| vec![v.to_string()])
                .unwrap_or_default(),
        })
    }

    /// Creates a raw product from a `(vendor, product)` pair (1.2 feeds).
    pub fn from_vendor_product(vendor: impl Into<String>, product: impl Into<String>) -> Self {
        RawProduct {
            part: None,
            vendor: vendor.into(),
            product: product.into(),
            versions: Vec::new(),
        }
    }

    /// Converts this raw product into a model-level [`AffectedProduct`],
    /// applying alias normalization first. Returns `None` when the product is
    /// explicitly marked as hardware or application (those never contribute
    /// to the OS-level analysis but are kept by the caller for completeness).
    pub fn to_affected(&self, normalizer: &NameNormalizer) -> AffectedProduct {
        let (vendor, product) = normalizer.normalize(&self.vendor, &self.product);
        let part = match self.part {
            Some('h') => CpePart::Hardware,
            Some('a') => CpePart::Application,
            Some('o') => CpePart::OperatingSystem,
            // 1.2 feeds do not carry the part: treat products that cluster
            // into a studied OS as operating systems, everything else as an
            // application.
            _ => {
                if OsDistribution::from_vendor_product(&vendor, &product).is_some() {
                    CpePart::OperatingSystem
                } else {
                    CpePart::Application
                }
            }
        };
        let mut cpe = Cpe::new(part, vendor, product);
        if let Some(first) = self.versions.first() {
            cpe = cpe.with_version(first.clone());
        }
        let mut affected = AffectedProduct::new(cpe);
        for version in self.versions.iter().skip(1) {
            affected.add_version(version.clone());
        }
        affected
    }
}

/// A raw NVD entry: the fields of interest of Section III of the paper
/// (name, publication date, summary, CVSS access information and the list of
/// affected configurations), before validation.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RawEntry {
    /// The CVE name, e.g. `CVE-2008-1447`.
    pub name: String,
    /// The publication date string, e.g. `2008-07-08T19:41:00.000-04:00`.
    pub published: Option<String>,
    /// The entry summary / description.
    pub summary: String,
    /// The CVSS v2 vector, either as `(AV:N/AC:L/Au:N/C:P/I:P/A:P)` (1.2
    /// feeds) or assembled from the individual metric elements (2.0 feeds).
    pub cvss_vector: Option<String>,
    /// Affected products.
    pub products: Vec<RawProduct>,
}

impl RawEntry {
    /// Converts the raw entry into a validated [`VulnerabilityEntry`].
    ///
    /// The entry's validity flag (Valid / Unknown / Unspecified / Disputed)
    /// is inferred from the summary, exactly as the paper's manual
    /// inspection did (Section III-A).
    ///
    /// # Errors
    ///
    /// Returns [`FeedError`] if the CVE name, publication date or CVSS
    /// vector cannot be parsed.
    pub fn to_entry(&self, normalizer: &NameNormalizer) -> Result<VulnerabilityEntry, FeedError> {
        let id: CveId = self.name.parse().map_err(|e| FeedError::Schema {
            entry: Some(self.name.clone()),
            reason: format!("bad CVE name: {e}"),
        })?;
        let mut builder = VulnerabilityEntry::builder(id).summary(self.summary.clone());
        if let Some(published) = &self.published {
            let date: Date = published.parse()?;
            builder = builder.published(date);
        }
        if let Some(vector) = &self.cvss_vector {
            let cvss: CvssV2 = vector.parse()?;
            builder = builder.cvss(cvss);
        }
        for product in &self.products {
            builder = builder.affects_product(product.to_affected(normalizer));
        }
        builder.build().map_err(|e| FeedError::Schema {
            entry: Some(self.name.clone()),
            reason: e.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvd_model::Validity;

    #[test]
    fn raw_product_from_cpe_uri() {
        let product = RawProduct::from_cpe_uri("cpe:/o:debian:debian_linux:4.0").unwrap();
        assert_eq!(product.part, Some('o'));
        assert_eq!(product.vendor, "debian");
        assert_eq!(product.versions, vec!["4.0".to_string()]);
        assert!(RawProduct::from_cpe_uri("not a cpe").is_err());
    }

    #[test]
    fn raw_product_without_part_uses_clustering() {
        let normalizer = NameNormalizer::default();
        let os_product = RawProduct::from_vendor_product("openbsd", "openbsd");
        assert_eq!(
            os_product.to_affected(&normalizer).os(),
            Some(OsDistribution::OpenBsd)
        );
        let app_product = RawProduct::from_vendor_product("mysql", "mysql");
        assert_eq!(app_product.to_affected(&normalizer).os(), None);
    }

    #[test]
    fn raw_entry_to_entry_parses_all_fields() {
        let raw = RawEntry {
            name: "CVE-2008-1447".to_string(),
            published: Some("2008-07-08T19:41:00.000-04:00".to_string()),
            summary: "DNS cache poisoning".to_string(),
            cvss_vector: Some("(AV:N/AC:M/Au:N/C:N/I:P/A:N)".to_string()),
            products: vec![
                RawProduct::from_cpe_uri("cpe:/o:debian:debian_linux:4.0").unwrap(),
                RawProduct::from_cpe_uri("cpe:/o:freebsd:freebsd").unwrap(),
                RawProduct::from_cpe_uri("cpe:/a:isc:bind:9.4").unwrap(),
            ],
        };
        let entry = raw.to_entry(&NameNormalizer::default()).unwrap();
        assert_eq!(entry.id(), CveId::new(2008, 1447));
        assert_eq!(entry.year(), 2008);
        assert_eq!(entry.affected_os_set().len(), 2);
        assert_eq!(entry.affected().len(), 3);
        assert!(entry.is_remotely_exploitable());
        assert_eq!(entry.validity(), Validity::Valid);
    }

    #[test]
    fn raw_entry_with_disputed_summary_is_flagged() {
        let raw = RawEntry {
            name: "CVE-2005-1111".to_string(),
            summary: "** DISPUTED ** possible issue in cron".to_string(),
            ..RawEntry::default()
        };
        let entry = raw.to_entry(&NameNormalizer::default()).unwrap();
        assert_eq!(entry.validity(), Validity::Disputed);
    }

    #[test]
    fn raw_entry_with_bad_name_is_rejected() {
        let raw = RawEntry {
            name: "NOT-A-CVE".to_string(),
            ..RawEntry::default()
        };
        assert!(raw.to_entry(&NameNormalizer::default()).is_err());
    }

    #[test]
    fn raw_entry_with_bad_date_is_rejected() {
        let raw = RawEntry {
            name: "CVE-2005-0001".to_string(),
            published: Some("last tuesday".to_string()),
            ..RawEntry::default()
        };
        assert!(raw.to_entry(&NameNormalizer::default()).is_err());
    }

    #[test]
    fn normalization_is_applied_during_conversion() {
        // ("linux", "debian") is one of the alias pairs the paper reports.
        let raw = RawEntry {
            name: "CVE-2004-0077".to_string(),
            summary: "kernel flaw".to_string(),
            products: vec![RawProduct::from_vendor_product("debian", "linux")],
            ..RawEntry::default()
        };
        let entry = raw.to_entry(&NameNormalizer::default()).unwrap();
        assert!(entry.affects(OsDistribution::Debian));
    }
}
