//! Product-name normalization and duplicate merging.
//!
//! Section III of the paper reports that NVD registers the same product
//! under distinct names for different entries — for example both
//! `("debian_linux", "debian")` and `("linux", "debian")` appear for Debian —
//! and that the authors corrected these problems by hand once the data was
//! in their SQL database. [`NameNormalizer`] reproduces that cleaning step
//! with an explicit, extensible alias table, and
//! [`merge_duplicate_entries`] merges entries that appear in more than one
//! yearly feed (NVD re-publishes modified entries).

use std::collections::HashMap;

use nvd_model::{CveId, VulnerabilityEntry};

/// Rewrites `(vendor, product)` pairs into their canonical spelling.
///
/// # Example
///
/// ```
/// use nvd_feed::NameNormalizer;
///
/// let normalizer = NameNormalizer::default();
/// let (vendor, product) = normalizer.normalize("debian", "linux");
/// assert_eq!((vendor.as_str(), product.as_str()), ("debian", "debian_linux"));
/// ```
#[derive(Debug, Clone)]
pub struct NameNormalizer {
    /// Maps `(vendor, product)` (lower-cased) to the canonical pair.
    aliases: HashMap<(String, String), (String, String)>,
}

impl NameNormalizer {
    /// Creates a normalizer with no aliases registered.
    pub fn empty() -> Self {
        NameNormalizer {
            aliases: HashMap::new(),
        }
    }

    /// Creates a normalizer pre-loaded with the alias corrections the study
    /// needed for its 64 CPEs (the "by hand" corrections of Section III).
    pub fn new() -> Self {
        let mut normalizer = NameNormalizer::empty();
        // Debian appears both as (debian, debian_linux) and (debian, linux).
        normalizer.add_alias("debian", "linux", "debian", "debian_linux");
        normalizer.add_alias("linux", "debian", "debian", "debian_linux");
        // Red Hat Linux and Red Hat Enterprise Linux are merged (footnote 3).
        normalizer.add_alias("redhat", "linux", "redhat", "enterprise_linux");
        normalizer.add_alias("redhat", "redhat_linux", "redhat", "enterprise_linux");
        normalizer.add_alias(
            "redhat",
            "enterprise_linux_server",
            "redhat",
            "enterprise_linux",
        );
        normalizer.add_alias(
            "redhat",
            "enterprise_linux_desktop",
            "redhat",
            "enterprise_linux",
        );
        // Ubuntu appears under both the "ubuntu" and "canonical" vendors.
        normalizer.add_alias("ubuntu", "ubuntu_linux", "canonical", "ubuntu_linux");
        normalizer.add_alias("ubuntu", "linux", "canonical", "ubuntu_linux");
        // Solaris is spelled both solaris and sunos depending on the era.
        normalizer.add_alias("sun", "sunos", "sun", "solaris");
        normalizer.add_alias("oracle", "solaris", "sun", "solaris");
        normalizer.add_alias("oracle", "opensolaris", "sun", "opensolaris");
        // Windows server products appear with and without the _server suffix.
        normalizer.add_alias(
            "microsoft",
            "windows_2003",
            "microsoft",
            "windows_2003_server",
        );
        normalizer.add_alias(
            "microsoft",
            "windows_server_2003",
            "microsoft",
            "windows_2003_server",
        );
        normalizer.add_alias(
            "microsoft",
            "windows_2008",
            "microsoft",
            "windows_server_2008",
        );
        normalizer
    }

    /// Registers an alias: `(vendor, product)` will be rewritten to
    /// `(canonical_vendor, canonical_product)`.
    pub fn add_alias(
        &mut self,
        vendor: &str,
        product: &str,
        canonical_vendor: &str,
        canonical_product: &str,
    ) {
        self.aliases.insert(
            (vendor.to_ascii_lowercase(), product.to_ascii_lowercase()),
            (
                canonical_vendor.to_ascii_lowercase(),
                canonical_product.to_ascii_lowercase(),
            ),
        );
    }

    /// Number of aliases registered.
    pub fn len(&self) -> usize {
        self.aliases.len()
    }

    /// Whether no aliases are registered.
    pub fn is_empty(&self) -> bool {
        self.aliases.is_empty()
    }

    /// Normalizes a `(vendor, product)` pair. Unknown pairs are returned
    /// lower-cased but otherwise unchanged.
    pub fn normalize(&self, vendor: &str, product: &str) -> (String, String) {
        let key = (vendor.to_ascii_lowercase(), product.to_ascii_lowercase());
        match self.aliases.get(&key) {
            Some((v, p)) => (v.clone(), p.clone()),
            None => key,
        }
    }
}

impl Default for NameNormalizer {
    fn default() -> Self {
        NameNormalizer::new()
    }
}

/// Merges entries with the same CVE identifier, unioning their affected
/// platforms and keeping the longest summary and the earliest publication
/// date. The returned vector is sorted by identifier.
///
/// NVD republishes entries when they are modified, so the same CVE can
/// appear in several yearly feeds; the paper's SQL ingestion de-duplicated
/// them by primary key.
///
/// # Example
///
/// ```
/// use nvd_feed::merge_duplicate_entries;
/// use nvd_model::{CveId, OsDistribution, VulnerabilityEntry};
///
/// # fn main() -> Result<(), nvd_model::ModelError> {
/// let a = VulnerabilityEntry::builder(CveId::new(2008, 1447))
///     .affects_os(OsDistribution::Debian)
///     .build()?;
/// let b = VulnerabilityEntry::builder(CveId::new(2008, 1447))
///     .affects_os(OsDistribution::FreeBsd)
///     .build()?;
/// let merged = merge_duplicate_entries(vec![a, b]);
/// assert_eq!(merged.len(), 1);
/// assert_eq!(merged[0].affected_os_set().len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn merge_duplicate_entries(entries: Vec<VulnerabilityEntry>) -> Vec<VulnerabilityEntry> {
    let mut by_id: HashMap<CveId, VulnerabilityEntry> = HashMap::new();
    for entry in entries {
        match by_id.remove(&entry.id()) {
            None => {
                by_id.insert(entry.id(), entry);
            }
            Some(existing) => {
                let merged = merge_pair(existing, entry);
                by_id.insert(merged.id(), merged);
            }
        }
    }
    let mut merged: Vec<VulnerabilityEntry> = by_id.into_values().collect();
    merged.sort_by_key(|e| e.id());
    merged
}

fn merge_pair(a: VulnerabilityEntry, b: VulnerabilityEntry) -> VulnerabilityEntry {
    debug_assert_eq!(a.id(), b.id());
    let (primary, secondary) = if a.summary().len() >= b.summary().len() {
        (a, b)
    } else {
        (b, a)
    };
    let published = primary.published().min(secondary.published());
    let mut builder = VulnerabilityEntry::builder(primary.id())
        .published(published)
        .summary(primary.summary().to_string())
        .validity(primary.validity());
    if let Some(cvss) = primary.cvss().or(secondary.cvss()) {
        builder = builder.cvss(*cvss);
    }
    if let Some(part) = primary.part().or(secondary.part()) {
        builder = builder.part(part);
    }
    for product in primary.affected().iter().chain(secondary.affected()) {
        builder = builder.affects_cpe(product.cpe().clone());
    }
    builder
        .build()
        .expect("merging two valid entries cannot produce an invalid one")
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvd_model::{Date, OsDistribution, OsPart};

    #[test]
    fn default_normalizer_handles_paper_aliases() {
        let n = NameNormalizer::default();
        assert!(!n.is_empty());
        assert_eq!(
            n.normalize("debian", "linux"),
            ("debian".to_string(), "debian_linux".to_string())
        );
        assert_eq!(
            n.normalize("LINUX", "DEBIAN"),
            ("debian".to_string(), "debian_linux".to_string())
        );
        assert_eq!(
            n.normalize("microsoft", "windows_server_2003"),
            ("microsoft".to_string(), "windows_2003_server".to_string())
        );
        // Unknown pairs pass through (lower-cased).
        assert_eq!(
            n.normalize("Apple", "Mac_OS_X"),
            ("apple".to_string(), "mac_os_x".to_string())
        );
    }

    #[test]
    fn custom_aliases_can_be_added() {
        let mut n = NameNormalizer::empty();
        assert!(n.is_empty());
        n.add_alias("suse", "linux", "novell", "suse_linux");
        assert_eq!(n.len(), 1);
        assert_eq!(
            n.normalize("suse", "linux"),
            ("novell".to_string(), "suse_linux".to_string())
        );
    }

    #[test]
    fn merge_unions_platforms_and_keeps_earliest_date() {
        let a = VulnerabilityEntry::builder(CveId::new(2006, 10))
            .published(Date::new(2006, 5, 1).unwrap())
            .summary("short")
            .part(OsPart::Kernel)
            .affects_os(OsDistribution::OpenBsd)
            .build()
            .unwrap();
        let b = VulnerabilityEntry::builder(CveId::new(2006, 10))
            .published(Date::new(2006, 3, 1).unwrap())
            .summary("a much longer description of the same flaw")
            .affects_os(OsDistribution::NetBsd)
            .build()
            .unwrap();
        let merged = merge_duplicate_entries(vec![a, b]);
        assert_eq!(merged.len(), 1);
        let entry = &merged[0];
        assert_eq!(entry.published(), Date::new(2006, 3, 1).unwrap());
        assert!(entry.summary().starts_with("a much longer"));
        assert_eq!(entry.part(), Some(OsPart::Kernel));
        assert!(entry.affects(OsDistribution::OpenBsd));
        assert!(entry.affects(OsDistribution::NetBsd));
    }

    #[test]
    fn merge_keeps_distinct_entries_apart() {
        let a = VulnerabilityEntry::builder(CveId::new(2006, 10))
            .build()
            .unwrap();
        let b = VulnerabilityEntry::builder(CveId::new(2006, 11))
            .build()
            .unwrap();
        let c = VulnerabilityEntry::builder(CveId::new(2007, 10))
            .build()
            .unwrap();
        let merged = merge_duplicate_entries(vec![c, b, a]);
        assert_eq!(merged.len(), 3);
        // Sorted by identifier.
        assert_eq!(merged[0].id(), CveId::new(2006, 10));
        assert_eq!(merged[2].id(), CveId::new(2007, 10));
    }

    #[test]
    fn merge_of_three_copies_accumulates_everything() {
        let make = |os| {
            VulnerabilityEntry::builder(CveId::new(2008, 4609))
                .affects_os(os)
                .build()
                .unwrap()
        };
        let merged = merge_duplicate_entries(vec![
            make(OsDistribution::Windows2000),
            make(OsDistribution::FreeBsd),
            make(OsDistribution::Solaris),
        ]);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].affected_os_set().len(), 3);
    }
}
