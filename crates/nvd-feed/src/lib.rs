//! Parsing and writing of NVD vulnerability data feeds.
//!
//! The study of Garcia et al. (DSN 2011) is driven by the XML data feeds
//! published by the NIST National Vulnerability Database: one feed per year
//! from 2002 to 2010, each containing the vulnerabilities published in that
//! period (the 2002 feed also covers 1994–2002). This crate provides the
//! substrate the paper's "program that collects, parses and inserts the XML
//! data feeds into an SQL database" (Section III) needed:
//!
//! * [`xml`] — a from-scratch, dependency-free XML pull parser and writer
//!   (only the subset of XML used by NVD feeds is supported);
//! * [`schema`] — the raw NVD entry representation, supporting both the
//!   legacy 1.2 feed layout (`<entry name=...><vuln_soft>...`) and the 2.0
//!   layout (`<entry id=...><vuln:vulnerable-software-list>...`);
//! * [`reader`] — turns feed XML into [`nvd_model::VulnerabilityEntry`]
//!   values, clustering CPEs into the 11 studied OS distributions;
//! * [`writer`] — serializes entries back into NVD 2.0-style XML, used by the
//!   synthetic-feed generator and for round-trip testing;
//! * [`normalize`] — product/vendor alias normalization and entry merging,
//!   reproducing the manual data-cleaning described in Section III.
//!
//! # Example
//!
//! ```
//! use nvd_feed::{FeedReader, FeedWriter};
//! use nvd_model::{CveId, OsDistribution, VulnerabilityEntry};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let entry = VulnerabilityEntry::builder(CveId::new(2008, 1447))
//!     .summary("DNS cache poisoning via predictable transaction IDs")
//!     .affects_os(OsDistribution::Debian)
//!     .affects_os(OsDistribution::FreeBsd)
//!     .build()?;
//!
//! let xml = FeedWriter::new().write_to_string(&[entry.clone()])?;
//! let parsed = FeedReader::new().read_from_str(&xml)?;
//! assert_eq!(parsed.len(), 1);
//! assert_eq!(parsed[0].id(), entry.id());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod normalize;
pub mod reader;
pub mod schema;
pub mod writer;
pub mod xml;

pub use error::FeedError;
pub use normalize::{merge_duplicate_entries, NameNormalizer};
pub use reader::FeedReader;
pub use schema::{FeedMetadata, RawEntry, RawProduct};
pub use writer::FeedWriter;

/// Convenience result alias used across the crate.
pub type Result<T, E = FeedError> = std::result::Result<T, E>;
