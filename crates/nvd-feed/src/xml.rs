//! A minimal, dependency-free XML pull parser and writer.
//!
//! NVD data feeds use a small, regular subset of XML: elements, attributes,
//! character data, comments and CDATA sections. Implementing that subset
//! in-repo keeps the workspace within its allowed dependency set (see
//! DESIGN.md §6). The parser is a *pull* parser: callers repeatedly ask for
//! the next [`XmlEvent`].
//!
//! Not supported (not needed for NVD feeds): DTDs, entity definitions beyond
//! the five predefined entities, processing instructions other than the XML
//! declaration (they are skipped), and exotic encodings (input must be UTF-8).
//!
//! # Example
//!
//! ```
//! use nvd_feed::xml::{XmlEvent, XmlReader};
//!
//! # fn main() -> Result<(), nvd_feed::FeedError> {
//! let mut reader = XmlReader::new("<feed><entry id=\"CVE-2008-1447\">DNS</entry></feed>");
//! assert!(matches!(reader.next_event()?, Some(XmlEvent::StartElement { .. })));
//! match reader.next_event()? {
//!     Some(XmlEvent::StartElement { name, attributes, .. }) => {
//!         assert_eq!(name, "entry");
//!         assert_eq!(attributes[0], ("id".to_string(), "CVE-2008-1447".to_string()));
//!     }
//!     other => panic!("unexpected event {other:?}"),
//! }
//! # Ok(())
//! # }
//! ```

use crate::FeedError;

/// An event produced by [`XmlReader`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlEvent {
    /// An opening tag, e.g. `<entry id="...">`. `self_closing` is true for
    /// `<tag/>`, in which case no matching [`XmlEvent::EndElement`] follows.
    StartElement {
        /// The element name with any namespace prefix stripped
        /// (`vuln:summary` becomes `summary`); the original prefixed name is
        /// kept in `qualified_name`.
        name: String,
        /// The element name exactly as written, including the namespace
        /// prefix.
        qualified_name: String,
        /// Attribute `(name, value)` pairs in document order, with entity
        /// references resolved.
        attributes: Vec<(String, String)>,
        /// Whether the element was written in self-closing form.
        self_closing: bool,
    },
    /// A closing tag, e.g. `</entry>` (name has its prefix stripped).
    EndElement {
        /// The element name with any namespace prefix stripped.
        name: String,
    },
    /// Character data between tags, with entity references resolved and
    /// CDATA sections unwrapped. Whitespace-only text is skipped.
    Text(String),
}

/// A pull parser over an XML string.
#[derive(Debug)]
pub struct XmlReader<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> XmlReader<'a> {
    /// Creates a reader over the given XML document.
    pub fn new(input: &'a str) -> Self {
        XmlReader {
            input: input.as_bytes(),
            pos: 0,
        }
    }

    /// Current byte offset, used for error reporting.
    pub fn offset(&self) -> usize {
        self.pos
    }

    fn err(&self, reason: impl Into<String>) -> FeedError {
        FeedError::xml(self.pos, reason)
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, prefix: &[u8]) -> bool {
        self.input
            .get(self.pos..)
            .is_some_and(|rest| rest.starts_with(prefix))
    }

    /// The input bytes in `start..end`. Positions come from the reader's
    /// own cursor, so the empty fallback is never observed — it exists so
    /// an internal inconsistency degrades to a parse error, not a panic.
    fn slice(&self, start: usize, end: usize) -> &'a [u8] {
        self.input.get(start..end).unwrap_or_default()
    }

    fn skip_until(&mut self, marker: &[u8]) -> Result<(), FeedError> {
        while self.pos < self.input.len() {
            if self.starts_with(marker) {
                self.pos += marker.len();
                return Ok(());
            }
            self.pos += 1;
        }
        Err(self.err(format!(
            "unexpected end of input while looking for {:?}",
            String::from_utf8_lossy(marker)
        )))
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Returns the next event, or `None` at end of input.
    ///
    /// # Errors
    ///
    /// Returns [`FeedError::Xml`] if the document is malformed.
    pub fn next_event(&mut self) -> Result<Option<XmlEvent>, FeedError> {
        loop {
            if self.pos >= self.input.len() {
                return Ok(None);
            }
            if self.peek() == Some(b'<') {
                if self.starts_with(b"<?") {
                    // XML declaration or processing instruction: skip.
                    self.skip_until(b"?>")?;
                    continue;
                }
                if self.starts_with(b"<!--") {
                    self.skip_until(b"-->")?;
                    continue;
                }
                if self.starts_with(b"<![CDATA[") {
                    self.pos += b"<![CDATA[".len();
                    let start = self.pos;
                    self.skip_until(b"]]>")?;
                    let text = std::str::from_utf8(self.slice(start, self.pos.saturating_sub(3)))
                        .map_err(|_| self.err("CDATA section is not valid UTF-8"))?;
                    if text.trim().is_empty() {
                        continue;
                    }
                    return Ok(Some(XmlEvent::Text(text.to_string())));
                }
                if self.starts_with(b"<!") {
                    // DOCTYPE or other declaration: skip to the closing '>'.
                    self.skip_until(b">")?;
                    continue;
                }
                if self.starts_with(b"</") {
                    self.pos += 2;
                    let name = self.read_name()?;
                    self.skip_whitespace();
                    if self.peek() != Some(b'>') {
                        return Err(self.err("expected '>' after closing tag name"));
                    }
                    self.pos += 1;
                    return Ok(Some(XmlEvent::EndElement {
                        name: strip_prefix(&name),
                    }));
                }
                return self.read_start_element().map(Some);
            }
            // Character data.
            let start = self.pos;
            while self.pos < self.input.len() && self.peek() != Some(b'<') {
                self.pos += 1;
            }
            let raw = std::str::from_utf8(self.slice(start, self.pos))
                .map_err(|_| self.err("character data is not valid UTF-8"))?;
            if raw.trim().is_empty() {
                continue;
            }
            return Ok(Some(XmlEvent::Text(unescape(raw.trim()))));
        }
    }

    fn read_start_element(&mut self) -> Result<XmlEvent, FeedError> {
        debug_assert_eq!(self.peek(), Some(b'<'));
        self.pos += 1;
        let qualified_name = self.read_name()?;
        let mut attributes = Vec::new();
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    return Ok(XmlEvent::StartElement {
                        name: strip_prefix(&qualified_name),
                        qualified_name,
                        attributes,
                        self_closing: false,
                    });
                }
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(self.err("expected '>' after '/' in self-closing tag"));
                    }
                    self.pos += 1;
                    return Ok(XmlEvent::StartElement {
                        name: strip_prefix(&qualified_name),
                        qualified_name,
                        attributes,
                        self_closing: true,
                    });
                }
                Some(_) => {
                    let attr_name = self.read_name()?;
                    self.skip_whitespace();
                    if self.peek() != Some(b'=') {
                        return Err(self.err(format!("attribute {attr_name:?} without '='")));
                    }
                    self.pos += 1;
                    self.skip_whitespace();
                    let quote = match self.peek() {
                        Some(q @ (b'"' | b'\'')) => q,
                        _ => return Err(self.err("attribute value must be quoted")),
                    };
                    self.pos += 1;
                    let start = self.pos;
                    while self.pos < self.input.len() && self.peek() != Some(quote) {
                        self.pos += 1;
                    }
                    if self.pos >= self.input.len() {
                        return Err(self.err("unterminated attribute value"));
                    }
                    let raw = std::str::from_utf8(self.slice(start, self.pos))
                        .map_err(|_| self.err("attribute value is not valid UTF-8"))?;
                    self.pos += 1;
                    attributes.push((attr_name, unescape(raw)));
                }
                None => return Err(self.err("unexpected end of input inside tag")),
            }
        }
    }

    fn read_name(&mut self) -> Result<String, FeedError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(std::str::from_utf8(self.slice(start, self.pos))
            .map_err(|_| self.err("element name is not valid UTF-8"))?
            .to_string())
    }

    /// Collects all the text directly inside the current element, consuming
    /// events until the matching end tag. Nested elements are skipped but
    /// their text is not collected. Must be called right after the start
    /// element event for `name` was returned.
    pub fn read_element_text(&mut self, name: &str) -> Result<String, FeedError> {
        let mut depth = 0usize;
        let mut text = String::new();
        loop {
            match self.next_event()? {
                Some(XmlEvent::StartElement {
                    self_closing: false,
                    ..
                }) => depth += 1,
                Some(XmlEvent::StartElement { .. }) => {}
                Some(XmlEvent::Text(t)) => {
                    if depth == 0 {
                        if !text.is_empty() {
                            text.push(' ');
                        }
                        text.push_str(&t);
                    }
                }
                Some(XmlEvent::EndElement { name: end }) => {
                    if depth == 0 {
                        if end != name {
                            return Err(self.err(format!(
                                "mismatched end tag: expected </{name}>, found </{end}>"
                            )));
                        }
                        return Ok(text);
                    }
                    depth = depth.saturating_sub(1);
                }
                None => return Err(self.err(format!("missing end tag </{name}>"))),
            }
        }
    }

    /// Skips everything up to and including the end tag matching the current
    /// element. Must be called right after the start element event for
    /// `name` was returned.
    pub fn skip_element(&mut self, name: &str) -> Result<(), FeedError> {
        let mut depth = 0usize;
        loop {
            match self.next_event()? {
                Some(XmlEvent::StartElement {
                    self_closing: false,
                    ..
                }) => depth += 1,
                Some(XmlEvent::StartElement { .. }) => {}
                Some(XmlEvent::Text(_)) => {}
                Some(XmlEvent::EndElement { .. }) if depth > 0 => depth = depth.saturating_sub(1),
                Some(XmlEvent::EndElement { .. }) => return Ok(()),
                None => return Err(self.err(format!("missing end tag </{name}>"))),
            }
        }
    }
}

/// Strips an optional namespace prefix from a qualified name
/// (`vuln:summary` → `summary`).
fn strip_prefix(qualified: &str) -> String {
    match qualified.rsplit_once(':') {
        Some((_, local)) => local.to_string(),
        None => qualified.to_string(),
    }
}

/// Resolves the five predefined XML entities and decimal/hex character
/// references.
pub fn unescape(raw: &str) -> String {
    if !raw.contains('&') {
        return raw.to_string();
    }
    // Every split offset below comes from `find` on `&`/`;` (both ASCII),
    // so the `.get(…)` lookups cannot miss; the empty fallbacks only make
    // that fact local instead of spanning the loop.
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(amp) = rest.find('&') {
        out.push_str(rest.get(..amp).unwrap_or_default());
        rest = rest.get(amp..).unwrap_or_default();
        if let Some(semi) = rest.find(';') {
            let entity = rest.get(1..semi).unwrap_or_default();
            let replacement = match entity {
                "lt" => Some('<'),
                "gt" => Some('>'),
                "amp" => Some('&'),
                "apos" => Some('\''),
                "quot" => Some('"'),
                _ => entity
                    .strip_prefix("#x")
                    .and_then(|hex| u32::from_str_radix(hex, 16).ok())
                    .or_else(|| entity.strip_prefix('#').and_then(|dec| dec.parse().ok()))
                    .and_then(char::from_u32),
            };
            match replacement {
                Some(ch) => {
                    out.push(ch);
                    rest = rest.get(semi + 1..).unwrap_or_default();
                }
                None => {
                    out.push('&');
                    rest = rest.get(1..).unwrap_or_default();
                }
            }
        } else {
            out.push('&');
            rest = rest.get(1..).unwrap_or_default();
        }
    }
    out.push_str(rest);
    out
}

/// Escapes the characters that must not appear literally in XML text or
/// attribute values.
pub fn escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for ch in raw.chars() {
        match ch {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(ch),
        }
    }
    out
}

/// A small helper for producing indented XML documents.
///
/// # Example
///
/// ```
/// use nvd_feed::xml::XmlWriter;
///
/// let mut w = XmlWriter::new();
/// w.open_with("entry", &[("id", "CVE-2010-0001")]);
/// w.text_element("summary", "An example entry");
/// w.close("entry");
/// assert!(w.finish().contains("<summary>An example entry</summary>"));
/// ```
#[derive(Debug, Default)]
pub struct XmlWriter {
    buffer: String,
    depth: usize,
}

impl XmlWriter {
    /// Creates a writer with the standard XML declaration already emitted.
    pub fn new() -> Self {
        XmlWriter {
            buffer: String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"),
            depth: 0,
        }
    }

    fn indent(&mut self) {
        for _ in 0..self.depth {
            self.buffer.push_str("  ");
        }
    }

    /// Opens an element without attributes.
    pub fn open(&mut self, name: &str) {
        self.open_with(name, &[]);
    }

    /// Opens an element with attributes.
    pub fn open_with(&mut self, name: &str, attributes: &[(&str, &str)]) {
        self.indent();
        self.buffer.push('<');
        self.buffer.push_str(name);
        for (key, value) in attributes {
            self.buffer.push(' ');
            self.buffer.push_str(key);
            self.buffer.push_str("=\"");
            self.buffer.push_str(&escape(value));
            self.buffer.push('"');
        }
        self.buffer.push_str(">\n");
        self.depth += 1;
    }

    /// Writes a self-closing element with attributes.
    pub fn empty_element(&mut self, name: &str, attributes: &[(&str, &str)]) {
        self.indent();
        self.buffer.push('<');
        self.buffer.push_str(name);
        for (key, value) in attributes {
            self.buffer.push(' ');
            self.buffer.push_str(key);
            self.buffer.push_str("=\"");
            self.buffer.push_str(&escape(value));
            self.buffer.push('"');
        }
        self.buffer.push_str("/>\n");
    }

    /// Writes `<name>text</name>` on one line.
    pub fn text_element(&mut self, name: &str, text: &str) {
        self.indent();
        self.buffer.push('<');
        self.buffer.push_str(name);
        self.buffer.push('>');
        self.buffer.push_str(&escape(text));
        self.buffer.push_str("</");
        self.buffer.push_str(name);
        self.buffer.push_str(">\n");
    }

    /// Closes the innermost open element.
    ///
    /// # Panics
    ///
    /// Panics if there is no open element (writer misuse, a programming
    /// error).
    pub fn close(&mut self, name: &str) {
        assert!(
            self.depth > 0,
            "XmlWriter::close called with no open element"
        );
        // guard: allow(arith) — guarded by the assert above; the writer is not attacker-facing
        self.depth -= 1;
        self.indent();
        self.buffer.push_str("</");
        self.buffer.push_str(name);
        self.buffer.push_str(">\n");
    }

    /// Finishes the document and returns the XML text.
    pub fn finish(self) -> String {
        self.buffer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(xml: &str) -> Vec<XmlEvent> {
        let mut reader = XmlReader::new(xml);
        let mut events = Vec::new();
        while let Some(event) = reader.next_event().unwrap() {
            events.push(event);
        }
        events
    }

    #[test]
    fn parses_simple_document() {
        let evs = events("<a><b attr=\"1\">text</b><c/></a>");
        assert_eq!(evs.len(), 6);
        assert!(matches!(&evs[0], XmlEvent::StartElement { name, .. } if name == "a"));
        assert!(matches!(&evs[2], XmlEvent::Text(t) if t == "text"));
        assert!(
            matches!(&evs[4], XmlEvent::StartElement { name, self_closing, .. } if name == "c" && *self_closing)
        );
        assert!(matches!(&evs[5], XmlEvent::EndElement { name } if name == "a"));
    }

    #[test]
    fn skips_declaration_comments_and_doctype() {
        let xml = "<?xml version=\"1.0\"?><!-- comment --><!DOCTYPE nvd><root>ok</root>";
        let evs = events(xml);
        assert_eq!(evs.len(), 3);
        assert!(matches!(&evs[1], XmlEvent::Text(t) if t == "ok"));
    }

    #[test]
    fn strips_namespace_prefixes_but_keeps_qualified_name() {
        let evs = events("<vuln:summary>DNS flaw</vuln:summary>");
        match &evs[0] {
            XmlEvent::StartElement {
                name,
                qualified_name,
                ..
            } => {
                assert_eq!(name, "summary");
                assert_eq!(qualified_name, "vuln:summary");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(&evs[2], XmlEvent::EndElement { name } if name == "summary"));
    }

    #[test]
    fn resolves_entities_in_text_and_attributes() {
        let evs = events("<a name=\"x &amp; y\">1 &lt; 2 &#65; &#x42;</a>");
        match &evs[0] {
            XmlEvent::StartElement { attributes, .. } => {
                assert_eq!(attributes[0].1, "x & y");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(&evs[1], XmlEvent::Text(t) if t == "1 < 2 A B"));
    }

    #[test]
    fn parses_cdata() {
        let evs = events("<a><![CDATA[1 < 2 & 3]]></a>");
        assert!(matches!(&evs[1], XmlEvent::Text(t) if t == "1 < 2 & 3"));
    }

    #[test]
    fn single_quoted_attributes() {
        let evs = events("<a name='value'/>");
        match &evs[0] {
            XmlEvent::StartElement { attributes, .. } => assert_eq!(attributes[0].1, "value"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn read_element_text_collects_direct_text_only() {
        let mut reader = XmlReader::new("<desc>outer <sub>inner</sub> tail</desc>");
        reader.next_event().unwrap();
        let text = reader.read_element_text("desc").unwrap();
        assert_eq!(text, "outer tail");
        assert!(reader.next_event().unwrap().is_none());
    }

    #[test]
    fn skip_element_skips_nested_content() {
        let mut reader = XmlReader::new("<a><skip><x>1</x><y/></skip><keep>2</keep></a>");
        reader.next_event().unwrap(); // <a>
        reader.next_event().unwrap(); // <skip>
        reader.skip_element("skip").unwrap();
        match reader.next_event().unwrap() {
            Some(XmlEvent::StartElement { name, .. }) => assert_eq!(name, "keep"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn reports_errors_with_offsets() {
        let mut reader = XmlReader::new("<a attr>text</a>");
        let err = reader.next_event().unwrap_err();
        assert!(matches!(err, FeedError::Xml { .. }));
        let mut reader = XmlReader::new("<a><![CDATA[unterminated");
        reader.next_event().unwrap();
        assert!(reader.next_event().is_err());
        let mut reader = XmlReader::new("<a attr=unquoted>x</a>");
        assert!(reader.next_event().is_err());
    }

    #[test]
    fn escape_unescape_roundtrip() {
        let original = "a < b & c > d \"quoted\" 'single'";
        assert_eq!(unescape(&escape(original)), original);
        assert_eq!(unescape("&unknown; &amp;"), "&unknown; &");
        assert_eq!(unescape("no entities"), "no entities");
    }

    #[test]
    fn writer_produces_parseable_document() {
        let mut w = XmlWriter::new();
        w.open_with("nvd", &[("xmlns", "http://example.invalid/feed")]);
        w.open_with("entry", &[("id", "CVE-2008-1447")]);
        w.text_element("summary", "DNS cache poisoning <critical>");
        w.empty_element("product", &[("cpe", "cpe:/o:debian:debian_linux")]);
        w.close("entry");
        w.close("nvd");
        let xml = w.finish();
        let evs = events(&xml);
        assert!(evs
            .iter()
            .any(|e| matches!(e, XmlEvent::Text(t) if t.contains("<critical>"))));
        assert!(evs
            .iter()
            .any(|e| matches!(e, XmlEvent::StartElement { name, .. } if name == "product")));
    }

    #[test]
    #[should_panic(expected = "no open element")]
    fn writer_close_without_open_panics() {
        let mut w = XmlWriter::new();
        w.close("nothing");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn escape_then_unescape_is_identity(text in "[ -~]{0,64}") {
                prop_assert_eq!(unescape(&escape(&text)), text);
            }

            #[test]
            fn writer_reader_roundtrip_text(text in "[a-zA-Z0-9 <>&\"']{1,64}") {
                // Skip inputs that are pure whitespace: the reader drops them.
                prop_assume!(!text.trim().is_empty());
                let mut w = XmlWriter::new();
                w.open("root");
                w.text_element("t", &text);
                w.close("root");
                let xml = w.finish();
                let evs = events(&xml);
                let roundtripped = evs.iter().find_map(|e| match e {
                    XmlEvent::Text(t) => Some(t.clone()),
                    _ => None,
                });
                prop_assert_eq!(roundtripped, Some(text.trim().to_string()));
            }

            #[test]
            fn parser_never_panics_on_arbitrary_input(input in "[ -~]{0,128}") {
                let mut reader = XmlReader::new(&input);
                for _ in 0..64 {
                    match reader.next_event() {
                        Ok(Some(_)) => {}
                        Ok(None) | Err(_) => break,
                    }
                }
            }
        }
    }
}
