//! Error type for feed parsing and writing.

use std::fmt;

use nvd_model::ModelError;

/// Error produced while reading or writing NVD data feeds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FeedError {
    /// The XML was malformed.
    Xml {
        /// Byte offset in the input where the problem was detected.
        offset: usize,
        /// Human readable description of the problem.
        reason: String,
    },
    /// The XML was well-formed but did not follow the NVD feed schema.
    Schema {
        /// The entry (CVE name) being parsed when the problem was found,
        /// if known.
        entry: Option<String>,
        /// Human readable description of the problem.
        reason: String,
    },
    /// A model-level value (CVE id, CPE, CVSS vector, date) failed to parse.
    Model(ModelError),
    /// An I/O error occurred while reading or writing a feed file.
    Io(String),
}

impl FeedError {
    /// Creates an XML-level error.
    pub fn xml(offset: usize, reason: impl Into<String>) -> Self {
        FeedError::Xml {
            offset,
            reason: reason.into(),
        }
    }

    /// Creates a schema-level error.
    pub fn schema(entry: Option<&str>, reason: impl Into<String>) -> Self {
        FeedError::Schema {
            entry: entry.map(str::to_string),
            reason: reason.into(),
        }
    }
}

impl fmt::Display for FeedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeedError::Xml { offset, reason } => {
                write!(f, "malformed XML at byte {offset}: {reason}")
            }
            FeedError::Schema { entry, reason } => match entry {
                Some(name) => write!(f, "invalid NVD entry {name}: {reason}"),
                None => write!(f, "invalid NVD feed: {reason}"),
            },
            FeedError::Model(err) => write!(f, "invalid field value: {err}"),
            FeedError::Io(msg) => write!(f, "feed I/O error: {msg}"),
        }
    }
}

impl std::error::Error for FeedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FeedError::Model(err) => Some(err),
            _ => None,
        }
    }
}

impl From<ModelError> for FeedError {
    fn from(err: ModelError) -> Self {
        FeedError::Model(err)
    }
}

impl From<std::io::Error> for FeedError {
    fn from(err: std::io::Error) -> Self {
        FeedError::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let err = FeedError::xml(42, "unexpected end of input");
        assert!(err.to_string().contains("42"));
        let err = FeedError::schema(Some("CVE-2008-1447"), "missing summary");
        assert!(err.to_string().contains("CVE-2008-1447"));
        let err = FeedError::schema(None, "no entries");
        assert!(err.to_string().contains("no entries"));
    }

    #[test]
    fn model_errors_convert_and_expose_source() {
        let model_err = ModelError::UnknownOs {
            input: "BeOS".to_string(),
        };
        let err: FeedError = model_err.into();
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<FeedError>();
    }
}
