//! Writing entries back into NVD 2.0-style XML feeds.
//!
//! The writer serves two purposes: it lets the synthetic-dataset generator
//! (`datagen`) materialize feeds on disk in the same format the paper's
//! pipeline consumed, and it gives the test suite a strong round-trip
//! property (`write → read` preserves every field the study uses).

use std::fs;
use std::path::Path;

use bytes::{BufMut, BytesMut};
use nvd_model::{AccessComplexity, AccessVector, Authentication, ImpactMetric, VulnerabilityEntry};

use crate::xml::XmlWriter;
use crate::FeedError;

/// Serializes vulnerability entries into NVD 2.0-style XML.
///
/// # Example
///
/// ```
/// use nvd_feed::{FeedReader, FeedWriter};
/// use nvd_model::{CveId, OsDistribution, VulnerabilityEntry};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let entry = VulnerabilityEntry::builder(CveId::new(2007, 5365))
///     .summary("DHCP server stack overflow")
///     .affects_os(OsDistribution::OpenBsd)
///     .build()?;
/// let xml = FeedWriter::new().write_to_string(&[entry])?;
/// assert!(xml.contains("CVE-2007-5365"));
/// assert_eq!(FeedReader::new().read_from_str(&xml)?.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct FeedWriter {
    /// Value written to the root element's `pub_date` attribute.
    pub_date: Option<String>,
}

impl FeedWriter {
    /// Creates a writer with no feed publication date.
    pub fn new() -> Self {
        FeedWriter { pub_date: None }
    }

    /// Sets the `pub_date` attribute written on the root element.
    pub fn with_pub_date(mut self, pub_date: impl Into<String>) -> Self {
        self.pub_date = Some(pub_date.into());
        self
    }

    /// Serializes the entries into an XML string.
    ///
    /// # Errors
    ///
    /// Currently infallible, but returns a `Result` so that future
    /// validation (e.g. duplicate identifiers) can be reported without a
    /// breaking change.
    pub fn write_to_string(&self, entries: &[VulnerabilityEntry]) -> Result<String, FeedError> {
        let mut w = XmlWriter::new();
        let pub_date = self.pub_date.clone().unwrap_or_default();
        let mut root_attrs: Vec<(&str, &str)> = vec![
            (
                "xmlns",
                "http://scap.nist.gov/schema/feed/vulnerability/2.0",
            ),
            ("nvd_xml_version", "2.0"),
        ];
        if !pub_date.is_empty() {
            root_attrs.push(("pub_date", pub_date.as_str()));
        }
        w.open_with("nvd", &root_attrs);
        for entry in entries {
            self.write_entry(&mut w, entry);
        }
        w.close("nvd");
        Ok(w.finish())
    }

    /// Serializes the entries into a byte buffer (UTF-8 XML).
    ///
    /// # Errors
    ///
    /// Same as [`FeedWriter::write_to_string`].
    pub fn write_to_bytes(&self, entries: &[VulnerabilityEntry]) -> Result<BytesMut, FeedError> {
        let text = self.write_to_string(entries)?;
        let mut buf = BytesMut::with_capacity(text.len());
        buf.put_slice(text.as_bytes());
        Ok(buf)
    }

    /// Serializes the entries and writes them to a file.
    ///
    /// # Errors
    ///
    /// Returns [`FeedError::Io`] if the file cannot be written.
    pub fn write_to_path(
        &self,
        path: impl AsRef<Path>,
        entries: &[VulnerabilityEntry],
    ) -> Result<(), FeedError> {
        let text = self.write_to_string(entries)?;
        fs::write(path, text)?;
        Ok(())
    }

    fn write_entry(&self, w: &mut XmlWriter, entry: &VulnerabilityEntry) {
        let id = entry.id().to_string();
        w.open_with("entry", &[("id", id.as_str())]);

        w.open("vuln:vulnerable-software-list");
        for product in entry.affected() {
            w.text_element("vuln:product", &product.cpe().to_string());
        }
        w.close("vuln:vulnerable-software-list");

        w.text_element("vuln:cve-id", &id);
        w.text_element(
            "vuln:published-datetime",
            &format!("{}T00:00:00.000-04:00", entry.published()),
        );

        if let Some(cvss) = entry.cvss() {
            w.open("vuln:cvss");
            w.open("cvss:base_metrics");
            w.text_element("cvss:score", &format!("{:.1}", cvss.base_score()));
            w.text_element(
                "cvss:access-vector",
                access_vector_name(cvss.access_vector()),
            );
            w.text_element(
                "cvss:access-complexity",
                access_complexity_name(cvss.access_complexity()),
            );
            w.text_element(
                "cvss:authentication",
                authentication_name(cvss.authentication()),
            );
            w.text_element(
                "cvss:confidentiality-impact",
                impact_name(cvss.confidentiality()),
            );
            w.text_element("cvss:integrity-impact", impact_name(cvss.integrity()));
            w.text_element("cvss:availability-impact", impact_name(cvss.availability()));
            w.close("cvss:base_metrics");
            w.close("vuln:cvss");
        }

        w.text_element("vuln:summary", entry.summary());
        w.close("entry");
    }
}

fn access_vector_name(av: AccessVector) -> &'static str {
    match av {
        AccessVector::Local => "LOCAL",
        AccessVector::AdjacentNetwork => "ADJACENT_NETWORK",
        AccessVector::Network => "NETWORK",
    }
}

fn access_complexity_name(ac: AccessComplexity) -> &'static str {
    match ac {
        AccessComplexity::High => "HIGH",
        AccessComplexity::Medium => "MEDIUM",
        AccessComplexity::Low => "LOW",
    }
}

fn authentication_name(au: Authentication) -> &'static str {
    match au {
        Authentication::Multiple => "MULTIPLE_INSTANCES",
        Authentication::Single => "SINGLE_INSTANCE",
        Authentication::None => "NONE",
    }
}

fn impact_name(impact: ImpactMetric) -> &'static str {
    match impact {
        ImpactMetric::None => "NONE",
        ImpactMetric::Partial => "PARTIAL",
        ImpactMetric::Complete => "COMPLETE",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FeedReader;
    use nvd_model::{CveId, CvssV2, Date, OsDistribution};

    fn sample_entries() -> Vec<VulnerabilityEntry> {
        vec![
            VulnerabilityEntry::builder(CveId::new(2008, 1447))
                .published(Date::new(2008, 7, 8).unwrap())
                .summary("DNS cache poisoning affecting <multiple> implementations & resolvers")
                .cvss("AV:N/AC:M/Au:N/C:N/I:P/A:N".parse::<CvssV2>().unwrap())
                .affects_os_version(OsDistribution::Debian, "4.0")
                .affects_os(OsDistribution::FreeBsd)
                .build()
                .unwrap(),
            VulnerabilityEntry::builder(CveId::new(2004, 230))
                .published(Date::new(2004, 4, 20).unwrap())
                .summary("TCP RST spoofing")
                .cvss("AV:N/AC:L/Au:N/C:N/I:N/A:P".parse::<CvssV2>().unwrap())
                .affects_os(OsDistribution::Windows2000)
                .affects_os(OsDistribution::Windows2003)
                .build()
                .unwrap(),
        ]
    }

    #[test]
    fn write_read_roundtrip_preserves_study_fields() {
        let entries = sample_entries();
        let xml = FeedWriter::new()
            .with_pub_date("2010-09-30")
            .write_to_string(&entries)
            .unwrap();
        let mut reader = FeedReader::new().strict();
        let (parsed, metadata) = reader.read_with_metadata(&xml).unwrap();
        assert_eq!(metadata.pub_date_or_default(), "2010-09-30");
        assert_eq!(parsed.len(), entries.len());
        for (original, roundtripped) in entries.iter().zip(&parsed) {
            assert_eq!(original.id(), roundtripped.id());
            assert_eq!(original.published(), roundtripped.published());
            assert_eq!(original.summary(), roundtripped.summary());
            assert_eq!(original.affected_os_set(), roundtripped.affected_os_set());
            assert_eq!(
                original.cvss().map(|c| c.access_vector()),
                roundtripped.cvss().map(|c| c.access_vector())
            );
            assert_eq!(
                original.cvss().map(|c| c.base_score()),
                roundtripped.cvss().map(|c| c.base_score())
            );
        }
    }

    #[test]
    fn special_characters_are_escaped() {
        let xml = FeedWriter::new()
            .write_to_string(&sample_entries())
            .unwrap();
        assert!(xml.contains("&lt;multiple&gt;"));
        assert!(xml.contains("&amp; resolvers"));
        assert!(!xml.contains("<multiple>"));
    }

    #[test]
    fn write_to_bytes_matches_string() {
        let entries = sample_entries();
        let text = FeedWriter::new().write_to_string(&entries).unwrap();
        let bytes = FeedWriter::new().write_to_bytes(&entries).unwrap();
        assert_eq!(text.as_bytes(), &bytes[..]);
    }

    #[test]
    fn write_to_path_and_read_back() {
        let dir = std::env::temp_dir().join("osdiv-feed-writer-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("feed.xml");
        let entries = sample_entries();
        FeedWriter::new().write_to_path(&path, &entries).unwrap();
        let parsed = FeedReader::new().read_from_path(&path).unwrap();
        assert_eq!(parsed.len(), entries.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_entry_list_produces_valid_document() {
        let xml = FeedWriter::new().write_to_string(&[]).unwrap();
        let parsed = FeedReader::new().strict().read_from_str(&xml).unwrap();
        assert!(parsed.is_empty());
    }

    impl crate::schema::FeedMetadata {
        /// Test helper: the pub_date or an empty string.
        fn pub_date_or_default(&self) -> String {
            self.published.clone().unwrap_or_default()
        }
    }
}
