//! Replica groups and quorum arithmetic.

use std::fmt;

use nvd_model::{OsDistribution, OsSet};

/// The replication model determining how many replicas are needed to
/// tolerate `f` faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuorumModel {
    /// Generic BFT state-machine replication: `n = 3f + 1` (e.g. PBFT,
    /// DepSpace).
    ThreeFPlusOne,
    /// Protocols separating agreement from execution or using trusted
    /// components: `n = 2f + 1`.
    TwoFPlusOne,
}

impl QuorumModel {
    /// Number of replicas needed to tolerate `f` faults.
    pub fn replicas_for(&self, f: usize) -> usize {
        match self {
            QuorumModel::ThreeFPlusOne => 3 * f + 1,
            QuorumModel::TwoFPlusOne => 2 * f + 1,
        }
    }

    /// Number of faults tolerated by `n` replicas (the largest `f` such that
    /// `replicas_for(f) <= n`).
    pub fn faults_tolerated(&self, n: usize) -> usize {
        match self {
            QuorumModel::ThreeFPlusOne => n.saturating_sub(1) / 3,
            QuorumModel::TwoFPlusOne => n.saturating_sub(1) / 2,
        }
    }
}

impl fmt::Display for QuorumModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuorumModel::ThreeFPlusOne => f.write_str("3f+1"),
            QuorumModel::TwoFPlusOne => f.write_str("2f+1"),
        }
    }
}

/// A concrete replica configuration: one operating system per replica
/// (repetition allowed — a homogeneous system runs the same OS everywhere).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaSet {
    replicas: Vec<OsDistribution>,
}

impl ReplicaSet {
    /// Creates a configuration from an explicit replica list.
    ///
    /// # Panics
    ///
    /// Panics if the list is empty (a replicated system needs at least one
    /// replica; this is a programming error in the caller).
    pub fn new(replicas: Vec<OsDistribution>) -> Self {
        assert!(!replicas.is_empty(), "a replica set cannot be empty");
        ReplicaSet { replicas }
    }

    /// A homogeneous configuration: `count` replicas of the same OS.
    pub fn homogeneous(os: OsDistribution, count: usize) -> Self {
        ReplicaSet::new(vec![os; count])
    }

    /// A diverse configuration with one replica per member of `oses`.
    pub fn diverse(oses: OsSet) -> Self {
        ReplicaSet::new(oses.iter().collect())
    }

    /// The replicas in order.
    pub fn replicas(&self) -> &[OsDistribution] {
        &self.replicas
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Whether the set is empty (never true for a constructed set).
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// The distinct operating systems used.
    pub fn distinct_oses(&self) -> OsSet {
        self.replicas.iter().copied().collect()
    }

    /// Number of replicas whose OS is in `affected` — i.e. how many replicas
    /// a vulnerability affecting `affected` compromises at once.
    pub fn replicas_affected_by(&self, affected: OsSet) -> usize {
        self.replicas
            .iter()
            .filter(|os| affected.contains(**os))
            .count()
    }

    /// Label such as `{Win2003, Solaris, Debian, OpenBSD}` or `Debian x4`.
    pub fn label(&self) -> String {
        let distinct = self.distinct_oses();
        if distinct.len() == 1 {
            format!("{} x{}", self.replicas[0].short_name(), self.replicas.len())
        } else {
            distinct.to_string()
        }
    }
}

impl fmt::Display for ReplicaSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_sizes_match_the_literature() {
        assert_eq!(QuorumModel::ThreeFPlusOne.replicas_for(1), 4);
        assert_eq!(QuorumModel::ThreeFPlusOne.replicas_for(2), 7);
        assert_eq!(QuorumModel::ThreeFPlusOne.replicas_for(4), 13);
        assert_eq!(QuorumModel::TwoFPlusOne.replicas_for(1), 3);
        assert_eq!(QuorumModel::TwoFPlusOne.replicas_for(3), 7);
    }

    #[test]
    fn faults_tolerated_is_the_inverse_of_replicas_for() {
        for model in [QuorumModel::ThreeFPlusOne, QuorumModel::TwoFPlusOne] {
            for f in 0..6 {
                let n = model.replicas_for(f);
                assert_eq!(model.faults_tolerated(n), f, "{model} f={f}");
                // One replica short tolerates one fault less.
                if f > 0 {
                    assert_eq!(model.faults_tolerated(n - 1), f - 1, "{model} f={f}");
                }
            }
        }
        assert_eq!(QuorumModel::ThreeFPlusOne.faults_tolerated(0), 0);
    }

    #[test]
    fn replica_set_constructors() {
        let homogeneous = ReplicaSet::homogeneous(OsDistribution::Debian, 4);
        assert_eq!(homogeneous.len(), 4);
        assert_eq!(homogeneous.distinct_oses().len(), 1);
        assert_eq!(homogeneous.label(), "Debian x4");
        assert!(!homogeneous.is_empty());

        let diverse = ReplicaSet::diverse(OsSet::from_iter([
            OsDistribution::OpenBsd,
            OsDistribution::Solaris,
            OsDistribution::Windows2003,
            OsDistribution::Debian,
        ]));
        assert_eq!(diverse.len(), 4);
        assert_eq!(diverse.distinct_oses().len(), 4);
        assert!(diverse.label().contains("Solaris"));
        assert_eq!(format!("{diverse}"), diverse.label());
    }

    #[test]
    fn replicas_affected_counts_repetitions() {
        let set = ReplicaSet::new(vec![
            OsDistribution::Debian,
            OsDistribution::Debian,
            OsDistribution::RedHat,
            OsDistribution::OpenBsd,
        ]);
        let affected = OsSet::pair(OsDistribution::Debian, OsDistribution::RedHat);
        assert_eq!(set.replicas_affected_by(affected), 3);
        assert_eq!(
            set.replicas_affected_by(OsSet::singleton(OsDistribution::Solaris)),
            0
        );
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn empty_replica_set_is_rejected() {
        ReplicaSet::new(Vec::new());
    }
}
