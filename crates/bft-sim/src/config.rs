//! Attacker, patching and recovery model.

use crate::quorum::QuorumModel;

/// The adversary model used by the simulator.
///
/// The paper has no exploit-rate data (Section V discusses this gap at
/// length), so the simulator exposes the two parameters that matter for the
/// diversity argument and lets the experiments sweep them:
///
/// * `exploit_probability` — the probability that a disclosed vulnerability
///   is ever weaponized against the system;
/// * `exposure_days` — how long a weaponized vulnerability remains usable
///   (from disclosure until every affected replica is patched).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackerModel {
    /// Probability that a disclosed vulnerability is weaponized.
    pub exploit_probability: f64,
    /// Days between disclosure and the patching of every affected replica.
    pub exposure_days: f64,
}

impl Default for AttackerModel {
    fn default() -> Self {
        // The defaults keep *independent* compromises of different replicas
        // rare over a five-year window, so the dominant failure mode is the
        // one the paper studies: a single vulnerability shared by several
        // replicas. Experiments sweep these parameters explicitly.
        AttackerModel {
            exploit_probability: 0.10,
            exposure_days: 10.0,
        }
    }
}

impl AttackerModel {
    /// Validates the model parameters.
    ///
    /// # Panics
    ///
    /// Panics if the probability is outside `[0, 1]` or the exposure is
    /// negative (programming errors in experiment code).
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.exploit_probability),
            "exploit probability must be in [0, 1]"
        );
        assert!(self.exposure_days >= 0.0, "exposure must be non-negative");
    }
}

/// Full configuration of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationConfig {
    /// Number of Monte-Carlo trials.
    pub trials: usize,
    /// PRNG seed (each trial derives its own stream from it).
    pub seed: u64,
    /// The replication model (determines how many compromised replicas the
    /// system tolerates).
    pub quorum: QuorumModel,
    /// The attacker model.
    pub attacker: AttackerModel,
    /// Proactive recovery period in days: compromised replicas are restored
    /// to a clean state at every multiple of this period. `None` disables
    /// recovery (a compromised replica stays compromised until patching).
    pub recovery_period_days: Option<f64>,
    /// First publication year considered (inclusive).
    pub first_year: u16,
    /// Last publication year considered (inclusive).
    pub last_year: u16,
    /// Number of worker threads for the Monte-Carlo trials.
    pub threads: usize,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            trials: 200,
            seed: 42,
            quorum: QuorumModel::ThreeFPlusOne,
            attacker: AttackerModel::default(),
            recovery_period_days: None,
            first_year: 2006,
            last_year: 2010,
            threads: 4,
        }
    }
}

impl SimulationConfig {
    /// Sets the number of trials.
    pub fn with_trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the PRNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the attacker model.
    pub fn with_attacker(mut self, attacker: AttackerModel) -> Self {
        self.attacker = attacker;
        self
    }

    /// Sets the quorum model.
    pub fn with_quorum(mut self, quorum: QuorumModel) -> Self {
        self.quorum = quorum;
        self
    }

    /// Enables proactive recovery with the given period in days.
    pub fn with_recovery_period(mut self, days: f64) -> Self {
        self.recovery_period_days = Some(days);
        self
    }

    /// Restricts the simulated disclosure timeline to a year range.
    pub fn with_years(mut self, first: u16, last: u16) -> Self {
        self.first_year = first;
        self.last_year = last;
        self
    }

    /// Sets the number of worker threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on invalid attacker parameters, a zero trial count or an
    /// inverted year range.
    pub fn validate(&self) {
        self.attacker.validate();
        assert!(self.trials > 0, "at least one trial is required");
        assert!(self.first_year <= self.last_year, "inverted year range");
        if let Some(period) = self.recovery_period_days {
            assert!(period > 0.0, "recovery period must be positive");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_configuration_is_valid() {
        SimulationConfig::default().validate();
    }

    #[test]
    fn builder_methods_set_fields() {
        let config = SimulationConfig::default()
            .with_trials(10)
            .with_seed(9)
            .with_quorum(QuorumModel::TwoFPlusOne)
            .with_recovery_period(7.0)
            .with_years(1994, 2005)
            .with_threads(0)
            .with_attacker(AttackerModel {
                exploit_probability: 0.5,
                exposure_days: 10.0,
            });
        config.validate();
        assert_eq!(config.trials, 10);
        assert_eq!(config.quorum, QuorumModel::TwoFPlusOne);
        assert_eq!(config.recovery_period_days, Some(7.0));
        assert_eq!(config.first_year, 1994);
        assert_eq!(config.threads, 1, "thread count is clamped to at least 1");
        assert_eq!(config.attacker.exposure_days, 10.0);
    }

    #[test]
    #[should_panic(expected = "exploit probability")]
    fn invalid_probability_is_rejected() {
        SimulationConfig::default()
            .with_attacker(AttackerModel {
                exploit_probability: 1.5,
                exposure_days: 30.0,
            })
            .validate();
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_are_rejected() {
        SimulationConfig::default().with_trials(0).validate();
    }

    #[test]
    #[should_panic(expected = "inverted year range")]
    fn inverted_years_are_rejected() {
        SimulationConfig::default()
            .with_years(2010, 2006)
            .validate();
    }
}
