//! Survival statistics aggregated over Monte-Carlo trials.

use crate::quorum::ReplicaSet;

/// The outcome of simulating one replica configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SurvivalReport {
    label: String,
    replica_count: usize,
    faults_tolerated: usize,
    trials: usize,
    failures: usize,
    time_to_failure_days: Vec<f64>,
    mean_peak_compromised: f64,
}

impl SurvivalReport {
    /// Assembles a report from raw trial outcomes.
    ///
    /// `time_to_failure_days` holds one entry per failed trial (days from
    /// the start of the simulated period to the first moment more than `f`
    /// replicas were compromised simultaneously).
    pub fn new(
        replica_set: &ReplicaSet,
        faults_tolerated: usize,
        trials: usize,
        time_to_failure_days: Vec<f64>,
        mean_peak_compromised: f64,
    ) -> Self {
        SurvivalReport {
            label: replica_set.label(),
            replica_count: replica_set.len(),
            faults_tolerated,
            trials,
            failures: time_to_failure_days.len(),
            time_to_failure_days,
            mean_peak_compromised,
        }
    }

    /// Human-readable label of the configuration.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Number of replicas in the configuration.
    pub fn replica_count(&self) -> usize {
        self.replica_count
    }

    /// Number of simultaneously compromised replicas the system tolerates.
    pub fn faults_tolerated(&self) -> usize {
        self.faults_tolerated
    }

    /// Number of Monte-Carlo trials run.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// Number of trials in which the system was compromised.
    pub fn failures(&self) -> usize {
        self.failures
    }

    /// Fraction of trials in which the system was compromised.
    pub fn failure_probability(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.failures as f64 / self.trials as f64
        }
    }

    /// Mean time to failure in days over the failed trials (`None` if the
    /// system never failed).
    pub fn mean_time_to_failure_days(&self) -> Option<f64> {
        if self.time_to_failure_days.is_empty() {
            None
        } else {
            Some(
                self.time_to_failure_days.iter().sum::<f64>()
                    / self.time_to_failure_days.len() as f64,
            )
        }
    }

    /// Mean (over trials) of the peak number of simultaneously compromised
    /// replicas.
    pub fn mean_peak_compromised(&self) -> f64 {
        self.mean_peak_compromised
    }
}

/// One row of a configuration-comparison table (used by the `survival`
/// experiment binary and bench).
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Configuration label.
    pub label: String,
    /// Probability that the system is compromised during the period.
    pub failure_probability: f64,
    /// Mean time to failure in days (None if it never failed).
    pub mean_time_to_failure_days: Option<f64>,
    /// Mean peak number of simultaneously compromised replicas.
    pub mean_peak_compromised: f64,
}

impl From<&SurvivalReport> for ComparisonRow {
    fn from(report: &SurvivalReport) -> Self {
        ComparisonRow {
            label: report.label().to_string(),
            failure_probability: report.failure_probability(),
            mean_time_to_failure_days: report.mean_time_to_failure_days(),
            mean_peak_compromised: report.mean_peak_compromised(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvd_model::OsDistribution;

    fn sample_set() -> ReplicaSet {
        ReplicaSet::homogeneous(OsDistribution::Debian, 4)
    }

    #[test]
    fn probabilities_and_means_are_computed_from_trials() {
        let report = SurvivalReport::new(&sample_set(), 1, 10, vec![10.0, 20.0, 30.0], 2.5);
        assert_eq!(report.failures(), 3);
        assert_eq!(report.trials(), 10);
        assert!((report.failure_probability() - 0.3).abs() < 1e-12);
        assert_eq!(report.mean_time_to_failure_days(), Some(20.0));
        assert_eq!(report.mean_peak_compromised(), 2.5);
        assert_eq!(report.replica_count(), 4);
        assert_eq!(report.faults_tolerated(), 1);
        assert_eq!(report.label(), "Debian x4");
    }

    #[test]
    fn surviving_configuration_has_no_mttf() {
        let report = SurvivalReport::new(&sample_set(), 1, 5, vec![], 0.4);
        assert_eq!(report.failure_probability(), 0.0);
        assert_eq!(report.mean_time_to_failure_days(), None);
    }

    #[test]
    fn zero_trials_do_not_divide_by_zero() {
        let report = SurvivalReport::new(&sample_set(), 1, 0, vec![], 0.0);
        assert_eq!(report.failure_probability(), 0.0);
    }

    #[test]
    fn comparison_row_copies_the_statistics() {
        let report = SurvivalReport::new(&sample_set(), 1, 4, vec![5.0], 1.0);
        let row = ComparisonRow::from(&report);
        assert_eq!(row.label, "Debian x4");
        assert!((row.failure_probability - 0.25).abs() < 1e-12);
        assert_eq!(row.mean_time_to_failure_days, Some(5.0));
    }
}
