//! Intrusion-tolerant replication simulator.
//!
//! The paper motivates OS diversity with the architecture of BFT replicated
//! systems: a system of `n` replicas tolerates up to `f` simultaneously
//! compromised replicas (`n = 3f+1` for generic BFT protocols, `n = 2f+1`
//! for some specific services). Common vulnerabilities break that assumption
//! because one exploit compromises every replica running an affected OS at
//! once. This crate turns that argument into a quantitative, simulation-based
//! experiment on top of the vulnerability dataset:
//!
//! * [`quorum`] — replica-group arithmetic (`3f+1`, `2f+1`, tolerated
//!   faults);
//! * [`config`] — the attacker / patching / proactive-recovery model;
//! * [`sim`] — a Monte-Carlo simulation that replays the vulnerability
//!   disclosure timeline against a replica configuration and measures how
//!   often more than `f` replicas are compromised simultaneously;
//! * [`metrics`] — survival statistics aggregated over trials.
//!
//! # Example
//!
//! ```
//! use bft_sim::{QuorumModel, ReplicaSet, SimulationConfig, Simulator};
//! use datagen::CalibratedGenerator;
//! use nvd_model::OsDistribution;
//! use osdiv_core::StudyDataset;
//!
//! let dataset = CalibratedGenerator::new(1).generate();
//! let study = StudyDataset::from_entries(dataset.entries());
//!
//! // Four identical Debian replicas vs. the paper's Set1.
//! let homogeneous = ReplicaSet::homogeneous(OsDistribution::Debian, 4);
//! let diverse = ReplicaSet::new(vec![
//!     OsDistribution::Windows2003,
//!     OsDistribution::Solaris,
//!     OsDistribution::Debian,
//!     OsDistribution::OpenBsd,
//! ]);
//!
//! let config = SimulationConfig::default().with_trials(500).with_seed(5);
//! let simulator = Simulator::new(&study, config);
//! let homo = simulator.run(&homogeneous);
//! let div = simulator.run(&diverse);
//! assert!(div.failure_probability() <= homo.failure_probability());
//! # let _ = QuorumModel::ThreeFPlusOne;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod metrics;
pub mod quorum;
pub mod sim;

pub use config::{AttackerModel, SimulationConfig};
pub use metrics::{ComparisonRow, SurvivalReport};
pub use quorum::{QuorumModel, ReplicaSet};
pub use sim::Simulator;
