//! The Monte-Carlo simulation engine.
//!
//! Each trial replays the vulnerability disclosure timeline of the dataset
//! against a replica configuration:
//!
//! 1. every base-system, remotely exploitable vulnerability published in the
//!    configured period is weaponized with probability
//!    `attacker.exploit_probability`;
//! 2. a weaponized vulnerability compromises every replica whose OS it
//!    affects, from its disclosure date until patching
//!    (`attacker.exposure_days` later), optionally truncated by proactive
//!    recovery;
//! 3. the trial fails at the first instant when more than `f` replicas are
//!    compromised simultaneously (`f` is derived from the replica count and
//!    the quorum model).
//!
//! Trials are independent and run on a small crossbeam thread pool.

use nvd_model::Date;
use osdiv_core::{ServerProfile, StudyDataset};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::SimulationConfig;
use crate::metrics::SurvivalReport;
use crate::quorum::ReplicaSet;

/// A vulnerability relevant to the simulation: its disclosure time (in days
/// from the period start) and the replicas it compromises.
#[derive(Debug, Clone)]
struct Threat {
    disclosed_day: f64,
    affected_replicas: Vec<usize>,
}

/// The simulator: a dataset plus a configuration, reusable across replica
/// configurations (the expensive part — extracting the threat timeline — is
/// done once per replica set).
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    study: &'a StudyDataset,
    config: SimulationConfig,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`SimulationConfig::validate`]).
    pub fn new(study: &'a StudyDataset, config: SimulationConfig) -> Self {
        config.validate();
        Simulator { study, config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// Runs the Monte-Carlo simulation for one replica configuration.
    pub fn run(&self, replicas: &ReplicaSet) -> SurvivalReport {
        let faults_tolerated = self.config.quorum.faults_tolerated(replicas.len());
        let threats = self.collect_threats(replicas);
        let trials = self.config.trials;
        let threads = self.config.threads.min(trials).max(1);

        let mut failures: Vec<(usize, f64)> = Vec::new();
        let mut peak_sum = 0.0f64;
        if threads == 1 {
            for trial in 0..trials {
                let (failure, peak) = self.run_trial(trial, &threats, faults_tolerated);
                if let Some(day) = failure {
                    failures.push((trial, day));
                }
                peak_sum += peak as f64;
            }
        } else {
            let chunk = trials.div_ceil(threads);
            let results = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for worker in 0..threads {
                    let start = worker * chunk;
                    let end = (start + chunk).min(trials);
                    let threats = &threats;
                    handles.push(scope.spawn(move || {
                        let mut local_failures = Vec::new();
                        let mut local_peak = 0.0f64;
                        for trial in start..end {
                            let (failure, peak) = self.run_trial(trial, threats, faults_tolerated);
                            if let Some(day) = failure {
                                local_failures.push((trial, day));
                            }
                            local_peak += peak as f64;
                        }
                        (local_failures, local_peak)
                    }));
                }
                handles
                    .into_iter()
                    .map(|handle| handle.join().expect("simulation worker panicked"))
                    .collect::<Vec<_>>()
            });
            for (local_failures, local_peak) in results {
                failures.extend(local_failures);
                peak_sum += local_peak;
            }
        }
        // Deterministic ordering regardless of the thread interleaving.
        failures.sort_by_key(|a| a.0);
        let times: Vec<f64> = failures.into_iter().map(|(_, day)| day).collect();
        let mean_peak = peak_sum / trials as f64;
        SurvivalReport::new(replicas, faults_tolerated, trials, times, mean_peak)
    }

    /// Runs the simulation for several configurations and returns the
    /// reports in the same order.
    pub fn compare(&self, configurations: &[ReplicaSet]) -> Vec<SurvivalReport> {
        configurations.iter().map(|set| self.run(set)).collect()
    }

    /// Extracts the threat timeline relevant to a replica configuration:
    /// Isolated-Thin-Server-relevant vulnerabilities published in the
    /// configured period that affect at least one replica.
    fn collect_threats(&self, replicas: &ReplicaSet) -> Vec<Threat> {
        let period_start = Date::from_year(self.config.first_year);
        let mut threats = Vec::new();
        for row in self.study.store().rows() {
            if !self.study.retains(row, ServerProfile::IsolatedThinServer) {
                continue;
            }
            let year = row.year();
            if year < self.config.first_year || year > self.config.last_year {
                continue;
            }
            let affected: Vec<usize> = replicas
                .replicas()
                .iter()
                .enumerate()
                .filter(|(_, os)| row.os_set.contains(**os))
                .map(|(index, _)| index)
                .collect();
            if affected.is_empty() {
                continue;
            }
            threats.push(Threat {
                disclosed_day: row.published.days_since(&period_start) as f64,
                affected_replicas: affected,
            });
        }
        threats.sort_by(|a, b| {
            a.disclosed_day
                .partial_cmp(&b.disclosed_day)
                .expect("days are finite")
        });
        threats
    }

    /// Runs one trial; returns the failure time (if the system failed) and
    /// the peak number of simultaneously compromised replicas.
    fn run_trial(
        &self,
        trial: usize,
        threats: &[Threat],
        faults_tolerated: usize,
    ) -> (Option<f64>, usize) {
        let mut rng = StdRng::seed_from_u64(
            self.config
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(trial as u64),
        );
        // Build per-replica compromise intervals.
        let mut intervals: Vec<(f64, f64, usize)> = Vec::new();
        for threat in threats {
            if !rng.gen_bool(self.config.attacker.exploit_probability) {
                continue;
            }
            let start = threat.disclosed_day;
            let mut end = start + self.config.attacker.exposure_days;
            if let Some(period) = self.config.recovery_period_days {
                // Proactive recovery restores the replica at the next
                // recovery boundary after the compromise started.
                let next_boundary = ((start / period).floor() + 1.0) * period;
                end = end.min(next_boundary);
            }
            for &replica in &threat.affected_replicas {
                intervals.push((start, end, replica));
            }
        }
        if intervals.is_empty() {
            return (None, 0);
        }
        // Sweep over interval endpoints counting simultaneously compromised
        // replicas (a replica covered by several overlapping intervals is
        // counted once).
        let mut events: Vec<(f64, i32, usize)> = Vec::with_capacity(intervals.len() * 2);
        for &(start, end, replica) in &intervals {
            events.push((start, 1, replica));
            events.push((end, -1, replica));
        }
        events.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("days are finite")
                .then(a.1.cmp(&b.1))
        });
        let replica_count = 1 + intervals.iter().map(|(_, _, r)| *r).max().unwrap_or(0);
        let mut per_replica = vec![0i32; replica_count];
        let mut compromised = 0usize;
        let mut peak = 0usize;
        let mut failure_day = None;
        for (day, delta, replica) in events {
            if delta > 0 {
                if per_replica[replica] == 0 {
                    compromised += 1;
                }
                per_replica[replica] += 1;
            } else {
                per_replica[replica] -= 1;
                if per_replica[replica] == 0 {
                    compromised -= 1;
                }
            }
            peak = peak.max(compromised);
            if failure_day.is_none() && compromised > faults_tolerated {
                failure_day = Some(day);
            }
        }
        (failure_day, peak)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AttackerModel;
    use crate::quorum::QuorumModel;
    use datagen::CalibratedGenerator;
    use nvd_model::{OsDistribution, OsSet};

    fn calibrated_study() -> StudyDataset {
        let dataset = CalibratedGenerator::new(21).generate();
        StudyDataset::from_entries(dataset.entries())
    }

    fn certain_attacker() -> AttackerModel {
        AttackerModel {
            exploit_probability: 1.0,
            exposure_days: 30.0,
        }
    }

    #[test]
    fn homogeneous_configuration_fails_when_every_exploit_lands() {
        let study = calibrated_study();
        let config = SimulationConfig::default()
            .with_trials(20)
            .with_attacker(certain_attacker())
            .with_threads(2);
        let simulator = Simulator::new(&study, config);
        let report = simulator.run(&ReplicaSet::homogeneous(OsDistribution::Debian, 4));
        // Debian had remotely exploitable vulnerabilities in 2006-2010, and
        // each compromises all four replicas at once.
        assert_eq!(report.failure_probability(), 1.0);
        assert!(report.mean_time_to_failure_days().is_some());
        assert!(report.mean_peak_compromised() >= 4.0 - 1e-9);
    }

    #[test]
    fn diverse_configuration_survives_better_than_homogeneous() {
        let study = calibrated_study();
        let config = SimulationConfig::default()
            .with_trials(60)
            .with_seed(3)
            .with_threads(3);
        let simulator = Simulator::new(&study, config);
        let homogeneous = simulator.run(&ReplicaSet::homogeneous(OsDistribution::Debian, 4));
        let diverse = simulator.run(&ReplicaSet::diverse(OsSet::from_iter([
            OsDistribution::Windows2003,
            OsDistribution::Solaris,
            OsDistribution::Debian,
            OsDistribution::OpenBsd,
        ])));
        assert!(
            diverse.failure_probability() < homogeneous.failure_probability(),
            "diverse {} vs homogeneous {}",
            diverse.failure_probability(),
            homogeneous.failure_probability()
        );
    }

    #[test]
    fn zero_exploit_probability_means_no_failures() {
        let study = calibrated_study();
        let config = SimulationConfig::default()
            .with_trials(10)
            .with_attacker(AttackerModel {
                exploit_probability: 0.0,
                exposure_days: 30.0,
            });
        let simulator = Simulator::new(&study, config);
        let report = simulator.run(&ReplicaSet::homogeneous(OsDistribution::Windows2000, 4));
        assert_eq!(report.failure_probability(), 0.0);
        assert_eq!(report.mean_peak_compromised(), 0.0);
    }

    #[test]
    fn results_are_deterministic_for_a_seed_and_thread_count_independent() {
        let study = calibrated_study();
        let base = SimulationConfig::default().with_trials(30).with_seed(11);
        let sequential = Simulator::new(&study, base.clone().with_threads(1));
        let parallel = Simulator::new(&study, base.with_threads(4));
        let set = ReplicaSet::diverse(OsSet::from_iter([
            OsDistribution::OpenBsd,
            OsDistribution::NetBsd,
            OsDistribution::Debian,
            OsDistribution::RedHat,
        ]));
        let a = sequential.run(&set);
        let b = parallel.run(&set);
        assert_eq!(a.failures(), b.failures());
        assert_eq!(a.mean_time_to_failure_days(), b.mean_time_to_failure_days());
        assert!((a.mean_peak_compromised() - b.mean_peak_compromised()).abs() < 1e-12);
    }

    #[test]
    fn proactive_recovery_reduces_exposure() {
        let study = calibrated_study();
        let base = SimulationConfig::default()
            .with_trials(40)
            .with_seed(5)
            .with_attacker(AttackerModel {
                exploit_probability: 0.6,
                exposure_days: 90.0,
            });
        let set = ReplicaSet::diverse(OsSet::from_iter([
            OsDistribution::Windows2003,
            OsDistribution::Solaris,
            OsDistribution::RedHat,
            OsDistribution::NetBsd,
        ]));
        let without = Simulator::new(&study, base.clone()).run(&set);
        let with = Simulator::new(&study, base.with_recovery_period(7.0)).run(&set);
        assert!(
            with.failure_probability() <= without.failure_probability(),
            "recovery {} vs none {}",
            with.failure_probability(),
            without.failure_probability()
        );
    }

    #[test]
    fn two_f_plus_one_is_more_fragile_than_three_f_plus_one_for_same_size() {
        // With four replicas, 3f+1 tolerates one compromise and 2f+1 also
        // tolerates one ((4-1)/2 = 1), but with three replicas 2f+1
        // tolerates one while 3f+1 tolerates none.
        let study = calibrated_study();
        let config = SimulationConfig::default().with_trials(30).with_seed(8);
        let three_replicas = ReplicaSet::diverse(OsSet::from_iter([
            OsDistribution::OpenBsd,
            OsDistribution::Solaris,
            OsDistribution::Windows2003,
        ]));
        let strict = Simulator::new(&study, config.clone()).run(&three_replicas);
        let relaxed = Simulator::new(&study, config.with_quorum(QuorumModel::TwoFPlusOne))
            .run(&three_replicas);
        assert!(relaxed.failure_probability() <= strict.failure_probability());
        assert_eq!(strict.faults_tolerated(), 0);
        assert_eq!(relaxed.faults_tolerated(), 1);
    }

    #[test]
    fn compare_returns_one_report_per_configuration() {
        let study = calibrated_study();
        let simulator = Simulator::new(&study, SimulationConfig::default().with_trials(5));
        let sets = vec![
            ReplicaSet::homogeneous(OsDistribution::Debian, 4),
            ReplicaSet::homogeneous(OsDistribution::Windows2000, 4),
        ];
        let reports = simulator.compare(&sets);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].label(), "Debian x4");
    }
}
