//! Offline stub of `criterion`.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal replacement for the handful of external crates it uses (see
//! `vendor/README.md`). This stub keeps the `criterion_group!` /
//! `criterion_main!` / `Criterion` surface used by `crates/bench/benches/*`
//! source-compatible and implements a small but honest wall-clock harness:
//! each benchmark is warmed up, an iteration count is calibrated to a target
//! sample duration, `sample_size` samples are collected and the
//! min / median / max per-iteration times are reported in criterion's
//! familiar `time: [low mid high]` layout.
//!
//! Swapping in the real `criterion` later is a manifest-only change.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    target_sample_time: Duration,
    /// Mean per-iteration duration of each collected sample.
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize, target_sample_time: Duration) -> Self {
        Bencher {
            sample_size,
            target_sample_time,
            samples: Vec::new(),
        }
    }

    /// Calibrates an iteration count, then times `routine` over
    /// `sample_size` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up + calibration: how many iterations fit in one sample?
        let warmup = Instant::now();
        black_box(routine());
        let once = warmup.elapsed().max(Duration::from_nanos(1));
        let iters = (self.target_sample_time.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters);
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.4} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.4} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.4} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// The benchmark driver (stub of `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    target_sample_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            target_sample_time: Duration::from_millis(5),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the wall-clock time one sample aims for.
    pub fn measurement_time(mut self, target: Duration) -> Self {
        self.target_sample_time = target;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size, self.target_sample_time);
        f(&mut bencher);
        report(id, &mut bencher.samples);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: group_name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark of the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Runs one benchmark of the group against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for source compatibility with criterion).
    pub fn finish(self) {}
}

fn report(id: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    samples.sort_unstable();
    let low = samples[0];
    let mid = samples[samples.len() / 2];
    let high = samples[samples.len() - 1];
    println!(
        "{id:<48} time: [{} {} {}]",
        format_duration(low),
        format_duration(mid),
        format_duration(high)
    );
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` function, mirroring criterion's macro.
///
/// Cargo invokes `harness = false` bench binaries with extra arguments
/// (`--bench`); the stub accepts and ignores them.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_micros(50));
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn groups_compose_names() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_micros(50));
        let mut group = c.benchmark_group("group");
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, n| {
            b.iter(|| black_box(*n * 2))
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x=1").to_string(), "x=1");
    }
}
