//! Offline stub of `parking_lot`.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal replacement for the handful of external crates it uses (see
//! `vendor/README.md`). This stub wraps the `std::sync` primitives and
//! reproduces parking_lot's headline API difference: locks are not poisoned,
//! so `read()` / `write()` / `lock()` return guards directly instead of
//! `Result`s. A poisoned std lock (a panic while holding the guard) is
//! recovered by taking the inner value, matching parking_lot's behaviour of
//! simply releasing the lock on panic.
//!
//! Swapping in the real `parking_lot` later is a manifest-only change.

use std::sync::{self, PoisonError};

/// Shared-read / exclusive-write lock guard types, re-exported from `std`.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// A reader-writer lock whose `read`/`write` never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new unlocked `RwLock`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}

/// A mutual-exclusion lock whose `lock` never returns poison errors.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new unlocked `Mutex`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires the lock only if it is free right now (parking_lot
    /// semantics: `None` means held, never poisoned).
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn rwlock_read_write_round_trip() {
        let lock = RwLock::new(1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn rwlock_is_not_poisoned_by_a_panicking_writer() {
        let lock = Arc::new(RwLock::new(0));
        let poisoner = Arc::clone(&lock);
        let _ = thread::spawn(move || {
            let _guard = poisoner.write();
            panic!("poison the std lock");
        })
        .join();
        // parking_lot semantics: the lock is usable again after the panic.
        assert_eq!(*lock.read(), 0);
    }

    #[test]
    fn mutex_round_trip() {
        let lock = Mutex::new(vec![1, 2]);
        lock.lock().push(3);
        assert_eq!(lock.into_inner(), vec![1, 2, 3]);
    }
}
