//! Offline stub of `bytes`.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal replacement for the handful of external crates it uses (see
//! `vendor/README.md`). [`BytesMut`] is a thin wrapper over `Vec<u8>` and
//! [`BufMut`] carries the append methods the feed writer uses. Swapping in
//! the real `bytes` later is a manifest-only change.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Write access to an append-only byte buffer.
pub trait BufMut {
    /// Appends `src` to the buffer.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte to the buffer.
    fn put_u8(&mut self, byte: u8) {
        self.put_slice(&[byte]);
    }
}

/// A growable, contiguous byte buffer (Vec-backed stub of `bytes::BytesMut`).
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with at least `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes currently in the buffer.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Returns a copy of the buffer's bytes (the buffer is left intact).
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Consumes the buffer and returns the underlying `Vec<u8>`.
    pub fn into_vec(self) -> Vec<u8> {
        self.inner
    }

    /// Freezes the buffer (stub: returns the underlying bytes).
    pub fn freeze(self) -> Vec<u8> {
        self.inner
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(inner: Vec<u8>) -> Self {
        BytesMut { inner }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        BytesMut {
            inner: src.to_vec(),
        }
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut(len={})", self.inner.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_slice_appends() {
        let mut buf = BytesMut::with_capacity(8);
        buf.put_slice(b"abc");
        buf.put_u8(b'd');
        assert_eq!(&buf[..], b"abcd");
        assert_eq!(buf.len(), 4);
        assert!(!buf.is_empty());
        assert_eq!(buf.into_vec(), b"abcd".to_vec());
    }
}
