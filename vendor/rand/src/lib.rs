//! Offline stub of `rand` (0.8-style API).
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal replacement for the handful of external crates it uses (see
//! `vendor/README.md`). This crate implements the exact surface the
//! `datagen` and `bft-sim` crates rely on:
//!
//! * [`Rng`] with `gen`, `gen_bool` and `gen_range` (half-open and inclusive
//!   integer ranges);
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`], a xoshiro256++ generator seeded through SplitMix64.
//!
//! The generator is deterministic for a given seed, which is all the
//! calibrated/parametric dataset builders need. Swapping in the real `rand`
//! later is a manifest-only change, although it would change the sampled
//! streams (and therefore the exact synthetic datasets) for a given seed.

use std::ops::{Range, RangeInclusive};

pub mod rngs;

/// A source of random `u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A type that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// A range that [`Rng::gen_range`] can sample values of type `T` from.
///
/// The trait is generic over the output type (mirroring `rand`'s design) so
/// that integer-literal ranges like `1..=12` infer their type from how the
/// sampled value is used.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing random-sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` (e.g. a `f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        f64::sample(self) < p
    }

    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Maps a random `u64` to `[0, span)` with the widening-multiply method.
fn bounded(word: u64, span: u64) -> u64 {
    ((u128::from(word) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_sampling {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Wrapping add: for signed types the u64 offset can cast
                // negative, and two's-complement wraparound is then exactly
                // the right modular arithmetic.
                self.start.wrapping_add(bounded(rng.next_u64(), span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain: every word is already uniform.
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                start.wrapping_add(bounded(rng.next_u64(), span) as $t)
            }
        }
    )*};
}

impl_int_sampling!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high-quality mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_give_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1..=28u8);
            assert!((1..=28).contains(&w));
            let u = rng.gen_range(0..11usize);
            assert!(u < 11);
        }
    }

    #[test]
    fn gen_range_handles_full_width_signed_ranges() {
        let mut rng = StdRng::seed_from_u64(21);
        let (mut neg, mut pos) = (false, false);
        for _ in 0..1_000 {
            let v = rng.gen_range(i32::MIN..i32::MAX);
            neg |= v < 0;
            pos |= v > 0;
            let w = rng.gen_range(i64::MIN..=i64::MAX);
            let _ = w;
        }
        assert!(neg && pos, "full-width range should cover both signs");
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 12];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..12usize)] = true;
        }
        assert!(seen.iter().all(|s| *s), "all 12 buckets should be hit");
    }

    #[test]
    fn gen_f64_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits} hits for p=0.25");
    }
}
