//! Offline stub of `serde_derive`.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal replacement for the handful of external crates it uses (see
//! `vendor/README.md`). This crate accepts the `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` attributes used throughout the data-model crates
//! and expands to nothing: the stub `serde` crate provides blanket trait
//! impls, so no generated code is required for the workspace to type-check.
//!
//! Swapping in the real `serde`/`serde_derive` later is a manifest-only
//! change; no source file references the stub directly.

use proc_macro::TokenStream;

/// Stub of serde's `#[derive(Serialize)]`; expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Stub of serde's `#[derive(Deserialize)]`; expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
