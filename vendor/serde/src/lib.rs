//! Offline stub of `serde`.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal replacement for the handful of external crates it uses (see
//! `vendor/README.md`). The data-model crates only *derive* `Serialize` /
//! `Deserialize` — nothing in the workspace serializes through serde yet —
//! so marker traits with blanket impls are sufficient for every bound to be
//! satisfiable. The derive macros re-exported from [`serde_derive`] expand to
//! nothing.
//!
//! Swapping in the real `serde` later is a manifest-only change; no source
//! file references the stub directly.

/// Marker stub of `serde::Serialize`; every type implements it.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stub of `serde::Deserialize`; every sized type implements it.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

/// Marker stub of `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};
