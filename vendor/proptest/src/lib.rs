//! Offline stub of `proptest`.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal replacement for the handful of external crates it uses (see
//! `vendor/README.md`). The real proptest shrinks failing inputs and persists
//! regressions; this stub keeps the *property-test surface* of the workspace
//! source-compatible and runs each property against a fixed number of
//! deterministic, seeded random cases (no shrinking):
//!
//! * the [`proptest!`] macro (`fn prop(x in strategy, ..) { .. }`);
//! * [`Strategy`] with `prop_map`, plus strategies for integer ranges,
//!   `[class]{m,n}` string regexes, tuples, [`Just`], [`prop_oneof!`],
//!   [`collection::vec`] and [`option::of`];
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` / `prop_assume!`.
//!
//! Swapping in the real `proptest` later is a manifest-only change.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

/// The RNG handed to strategies by the [`proptest!`] runner.
pub type TestRng = StdRng;

/// Marker returned by [`prop_assume!`] to reject the current case.
#[derive(Debug, Clone, Copy)]
pub struct CaseRejected;

/// Runner plumbing used by the [`proptest!`] macro expansion.
pub mod test_runner {
    use super::TestRng;
    use rand::SeedableRng;

    /// Number of random cases each property is checked against.
    pub const CASES: usize = 64;

    /// Deterministic per-test RNG: the seed is derived from the test name
    /// (FNV-1a) so every property gets a distinct but reproducible stream.
    pub fn rng_for(test_name: &str) -> TestRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::seed_from_u64(hash)
    }
}

/// A recipe for producing random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            sampler: Box::new(move |rng| self.sample(rng)),
        }
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    sampler: Box<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.sampler)(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between type-erased strategies ([`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over the given arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let index = rng.gen_range(0..self.arms.len());
        self.arms[index].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `&str` strategies interpret the string as a regex of the restricted form
/// `[class]{m,n}` (optionally `{n}`, or no repetition for a single char),
/// which is the subset the workspace tests use.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_class_regex(self);
        let len = rng.gen_range(min..=max);
        (0..len)
            .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
            .collect()
    }
}

/// Parses `[class]{m,n}` into (alphabet, min_len, max_len).
///
/// # Panics
///
/// Panics on regex forms outside the supported subset.
fn parse_class_regex(pattern: &str) -> (Vec<char>, usize, usize) {
    let rest = pattern
        .strip_prefix('[')
        .unwrap_or_else(|| panic!("unsupported regex (expected `[class]{{m,n}}`): {pattern:?}"));
    let close = rest
        .find(']')
        .unwrap_or_else(|| panic!("unterminated character class: {pattern:?}"));
    let class: Vec<char> = rest[..close].chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if class[i] == '\\' && i + 1 < class.len() {
            alphabet.push(class[i + 1]);
            i += 2;
        } else if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i], class[i + 2]);
            assert!(lo <= hi, "bad range {lo}-{hi} in {pattern:?}");
            for c in lo..=hi {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    assert!(!alphabet.is_empty(), "empty character class: {pattern:?}");

    let rep = &rest[close + 1..];
    if rep.is_empty() {
        return (alphabet, 1, 1);
    }
    let counts = rep
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unsupported repetition (expected `{{m,n}}`): {pattern:?}"));
    let (min, max) = match counts.split_once(',') {
        Some((m, n)) => (m.trim().parse().unwrap(), n.trim().parse().unwrap()),
        None => {
            let n = counts.trim().parse().unwrap();
            (n, n)
        }
    };
    assert!(min <= max, "bad repetition bounds in {pattern:?}");
    (alphabet, min, max)
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Something that can act as a collection size: an exact count or a
    /// range of counts.
    pub trait SizeRange {
        /// Draws one length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec<T>` with element strategy `element` and a size
    /// drawn from `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Option<T>`: `None` a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// The strategy returned by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        Strategy,
    };
}

/// Declares property tests: each function runs its body against
/// [`test_runner::CASES`] seeded random cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..$crate::test_runner::CASES {
                    $(let $arg = $crate::Strategy::sample(&$strategy, &mut rng);)+
                    // The body runs inside a closure so `prop_assume!` can
                    // reject the whole case with `return` from any nesting
                    // depth (mirroring real proptest's TestCaseError::Reject).
                    let __proptest_case = move || -> ::std::result::Result<(), $crate::CaseRejected> {
                        $body
                        Ok(())
                    };
                    let _rejected_is_fine = __proptest_case();
                }
            }
        )*
    };
}

/// Uniform choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Property assertion (stub: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Property equality assertion (stub: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Property inequality assertion (stub: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Skips the current random case when its precondition does not hold.
///
/// Expands to an early `return` from the case closure the [`proptest!`]
/// macro wraps each body in, so it rejects the case correctly even from
/// inside nested loops.
#[macro_export]
macro_rules! prop_assume {
    ($condition:expr $(, $($rest:tt)*)?) => {
        if !$condition {
            return Err($crate::CaseRejected);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{parse_class_regex, test_runner};

    #[test]
    fn class_regex_parsing() {
        let (alphabet, min, max) = parse_class_regex("[a-c_]{1,12}");
        assert_eq!(alphabet, vec!['a', 'b', 'c', '_']);
        assert_eq!((min, max), (1, 12));

        let (alphabet, min, max) = parse_class_regex("[ -~]{0,64}");
        assert_eq!(alphabet.len(), 95, "printable ASCII");
        assert_eq!((min, max), (0, 64));
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        use rand::RngCore;
        let a = test_runner::rng_for("x").next_u64();
        let b = test_runner::rng_for("x").next_u64();
        let c = test_runner::rng_for("y").next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #[test]
        fn macro_runs_and_samples(len in 0usize..5, text in "[a-z]{2,4}", choice in prop_oneof![Just(1), Just(2)]) {
            prop_assume!(len != 4);
            prop_assert!(len < 4);
            prop_assert_eq!(text.len() >= 2, true);
            prop_assert_ne!(choice, 0);
            let v = crate::Strategy::sample(
                &crate::collection::vec(0u8..10, 1..3),
                &mut crate::test_runner::rng_for("inner"),
            );
            prop_assert!(!v.is_empty());
        }
    }
}
