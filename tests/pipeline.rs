//! End-to-end integration test of the full pipeline the paper describes in
//! Section III: generate → serialize as NVD feeds → parse → normalize →
//! ingest into the relational store → classify → analyze.

use classify::{ClassificationReport, Classifier};
use datagen::CalibratedGenerator;
use nvd_feed::{merge_duplicate_entries, FeedReader, FeedWriter};
use nvd_model::{OsDistribution, OsSet};
use osdiv_core::{PairwiseAnalysis, ServerProfile, Study, StudyDataset};

#[test]
fn feed_roundtrip_preserves_the_analysis_results() {
    let dataset = CalibratedGenerator::new(77)
        .without_invalid_entries()
        .generate();

    // Direct ingestion.
    let direct = Study::from_entries(dataset.entries());

    // Ingestion through the XML feed format.
    let xml = FeedWriter::new()
        .write_to_string(dataset.entries())
        .unwrap();
    let parsed = FeedReader::new().strict().read_from_str(&xml).unwrap();
    let roundtripped = Study::from_entries(&parsed);

    assert_eq!(
        direct.store().vulnerability_count(),
        roundtripped.store().vulnerability_count()
    );
    // The pairwise counts are insensitive to the serialization except for
    // the OS-part classification, which travels outside the feed format (the
    // real NVD does not carry it either); compare the Fat Server counts.
    let direct_pairs = direct.get::<PairwiseAnalysis>().unwrap();
    let roundtrip_pairs = roundtripped.get::<PairwiseAnalysis>().unwrap();
    for (a, b) in [
        (OsDistribution::OpenBsd, OsDistribution::NetBsd),
        (OsDistribution::Debian, OsDistribution::RedHat),
        (OsDistribution::Windows2000, OsDistribution::Windows2003),
    ] {
        assert_eq!(
            direct_pairs.pair(a, b).unwrap().v_ab.0,
            roundtrip_pairs.pair(a, b).unwrap().v_ab.0,
            "pair {a}-{b}"
        );
    }
}

#[test]
fn duplicated_feed_entries_are_merged_not_double_counted() {
    let dataset = CalibratedGenerator::new(78)
        .without_invalid_entries()
        .generate();
    // Simulate the same entries appearing in two yearly feeds.
    let mut duplicated = dataset.entries().to_vec();
    duplicated.extend(dataset.entries().iter().cloned());
    let merged = merge_duplicate_entries(duplicated);
    assert_eq!(merged.len(), dataset.entries().len());
    let study = StudyDataset::from_entries(&merged);
    assert_eq!(study.store().vulnerability_count(), dataset.entries().len());
}

#[test]
fn classifier_recovers_most_ground_truth_classes() {
    let dataset = CalibratedGenerator::new(79)
        .without_invalid_entries()
        .generate();
    let classifier = Classifier::with_default_rules();
    let pairs: Vec<_> = dataset
        .entries()
        .iter()
        .filter_map(|entry| {
            // The named multi-OS vulnerabilities have hand-written summaries;
            // they go through the same path as everything else.
            let truth = entry.part()?;
            Some((truth, classifier.classify_entry(entry).part))
        })
        .collect();
    assert!(pairs.len() > 1500);
    let report = ClassificationReport::from_pairs(pairs);
    assert!(
        report.accuracy() > 0.85,
        "classification accuracy {:.3} too low",
        report.accuracy()
    );
    assert!(
        report.macro_f1() > 0.75,
        "macro F1 {:.3} too low",
        report.macro_f1()
    );
}

#[test]
fn classification_via_store_matches_direct_classification() {
    let dataset = CalibratedGenerator::new(80)
        .without_invalid_entries()
        .generate();
    // Re-ingest through the feed (which drops the ground-truth class), then
    // classify inside the store.
    let xml = FeedWriter::new()
        .write_to_string(dataset.entries())
        .unwrap();
    let parsed = FeedReader::new().strict().read_from_str(&xml).unwrap();
    let mut study = StudyDataset::from_entries(&parsed);
    let classified = study.classify_unlabelled(&Classifier::with_default_rules());
    assert_eq!(classified, parsed.len());
    // Every row now has a class, so the Thin Server filter is meaningful.
    let all = study.count_for_os(OsDistribution::Windows2000, ServerProfile::FatServer);
    let thin = study.count_for_os(OsDistribution::Windows2000, ServerProfile::ThinServer);
    assert!(thin < all);
}

#[test]
fn filters_are_consistent_across_the_public_api() {
    let dataset = CalibratedGenerator::new(81).generate();
    let study = StudyDataset::from_entries(dataset.entries());
    for os in OsDistribution::ALL {
        let single = OsSet::singleton(os);
        let fat = study.count_common(single, ServerProfile::FatServer);
        let thin = study.count_common(single, ServerProfile::ThinServer);
        let isolated = study.count_common(single, ServerProfile::IsolatedThinServer);
        assert!(fat >= thin, "{os}");
        assert!(thin >= isolated, "{os}");
        assert_eq!(fat, study.count_for_os(os, ServerProfile::FatServer));
    }
}
