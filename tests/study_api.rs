//! Integration tests of the `Study` session API: memoization semantics,
//! `run_all` equivalence with individual analysis runs, and the CSV / JSON
//! renderers round-tripping the deliverables.

use std::sync::Arc;

use osdiv::datagen::CalibratedGenerator;
use osdiv::osdiv_core::render::{CsvRenderer, JsonRenderer, Render};
use osdiv::osdiv_core::{
    ClassDistribution, KWayAnalysis, PairwiseAnalysis, ReleaseAnalysis, Section, SelectionAnalysis,
    SplitMatrix, TemporalAnalysis, ValidityDistribution,
};
use osdiv::tabular::TextTable;
use osdiv::{AnalysisId, Study};

fn session(seed: u64) -> Study {
    let dataset = CalibratedGenerator::new(seed).generate();
    Study::from_entries(dataset.entries())
}

#[test]
fn second_get_returns_the_cached_value() {
    let study = session(2011);
    assert!(!study.is_cached(AnalysisId::Pairwise));
    let first = study.get::<PairwiseAnalysis>().unwrap();
    let second = study.get::<PairwiseAnalysis>().unwrap();
    assert!(
        Arc::ptr_eq(&first, &second),
        "the second lookup must return the memoized allocation"
    );
    assert_eq!(study.cached_ids(), vec![AnalysisId::Pairwise]);
}

#[test]
fn run_all_output_equals_individual_runs() {
    let parallel = session(2011);
    parallel.run_all().unwrap();
    assert_eq!(parallel.cached_ids(), AnalysisId::ALL.to_vec());

    let sequential = session(2011);
    assert_eq!(
        *parallel.get::<ValidityDistribution>().unwrap(),
        *sequential.get::<ValidityDistribution>().unwrap()
    );
    assert_eq!(
        *parallel.get::<ClassDistribution>().unwrap(),
        *sequential.get::<ClassDistribution>().unwrap()
    );
    assert_eq!(
        parallel.get::<PairwiseAnalysis>().unwrap().rows(),
        sequential.get::<PairwiseAnalysis>().unwrap().rows()
    );
    assert_eq!(
        parallel.get::<SplitMatrix>().unwrap().oses(),
        sequential.get::<SplitMatrix>().unwrap().oses()
    );
    assert_eq!(
        parallel.get::<ReleaseAnalysis>().unwrap().rows(),
        sequential.get::<ReleaseAnalysis>().unwrap().rows()
    );
    assert_eq!(
        parallel.get::<KWayAnalysis>().unwrap().rows(),
        sequential.get::<KWayAnalysis>().unwrap().rows()
    );
    assert_eq!(
        *parallel.get::<SelectionAnalysis>().unwrap(),
        *sequential.get::<SelectionAnalysis>().unwrap()
    );
    let temporal_parallel = parallel.get::<TemporalAnalysis>().unwrap();
    let temporal_sequential = sequential.get::<TemporalAnalysis>().unwrap();
    for family in osdiv::OsFamily::ALL {
        assert_eq!(
            temporal_parallel.family_series(family),
            temporal_sequential.family_series(family)
        );
    }
    // And the rendered reports agree wholesale.
    assert_eq!(
        parallel.report(osdiv::Format::Text).unwrap(),
        sequential.report(osdiv::Format::Text).unwrap()
    );
}

#[test]
fn concurrent_hammering_memoizes_one_value_without_deadlock() {
    // The serving layer shares one `Study` across worker threads; 8 getter
    // threads and 2 `run_all` threads racing must agree on a single
    // memoized allocation per analysis and must not deadlock.
    let study = session(7);
    let (pairwise_results, classes_results) = std::thread::scope(|scope| {
        for _ in 0..2 {
            scope.spawn(|| study.run_all().unwrap());
        }
        let getters: Vec<_> = (0..8)
            .map(|_| {
                scope.spawn(|| {
                    let mut last = None;
                    for _ in 0..50 {
                        last = Some((
                            study.get::<PairwiseAnalysis>().unwrap(),
                            study.get::<ClassDistribution>().unwrap(),
                        ));
                    }
                    last.unwrap()
                })
            })
            .collect();
        getters
            .into_iter()
            .map(|handle| handle.join().unwrap())
            .unzip::<_, _, Vec<_>, Vec<_>>()
    });
    // Every thread ended up holding the same memoized allocations.
    let canonical_pairwise = study.get::<PairwiseAnalysis>().unwrap();
    let canonical_classes = study.get::<ClassDistribution>().unwrap();
    for pairwise in &pairwise_results {
        assert!(
            Arc::ptr_eq(pairwise, &canonical_pairwise),
            "a thread observed a non-memoized pairwise value"
        );
    }
    for classes in &classes_results {
        assert!(Arc::ptr_eq(classes, &canonical_classes));
    }
    assert_eq!(study.cached_ids(), AnalysisId::ALL.to_vec());
}

#[test]
fn table3_csv_round_trips_the_row_values() {
    let study = session(2011);
    let analysis = study.get::<PairwiseAnalysis>().unwrap();
    let table = analysis.to_table3();
    let parsed = TextTable::from_csv(&table.to_csv()).expect("exported CSV parses");
    assert_eq!(parsed, table);
    // Spot-check the parsed cells against the analysis values themselves.
    for (i, row) in analysis.rows().iter().enumerate() {
        assert_eq!(
            parsed.cell(i, 0).unwrap(),
            format!("{}-{}", row.a.short_name(), row.b.short_name())
        );
        assert_eq!(parsed.cell(i, 3).unwrap(), row.v_ab.0.to_string());
        assert_eq!(parsed.cell(i, 9).unwrap(), row.v_ab.2.to_string());
    }
}

#[test]
fn table3_json_round_trips_the_row_values() {
    let study = session(2011);
    let analysis = study.get::<PairwiseAnalysis>().unwrap();
    let table = analysis.to_table3();
    let json = JsonRenderer.document(&[Section::table("Table III", table)]);
    assert!(json.starts_with("{\"sections\":["));
    // Every row of the analysis appears as its exact JSON array encoding.
    for row in analysis.rows() {
        let expected = format!(
            "[\"{}-{}\",\"{}\",\"{}\",\"{}\",\"{}\",\"{}\",\"{}\",\"{}\",\"{}\",\"{}\"]",
            row.a.short_name(),
            row.b.short_name(),
            row.v_a.0,
            row.v_b.0,
            row.v_ab.0,
            row.v_a.1,
            row.v_b.1,
            row.v_ab.1,
            row.v_a.2,
            row.v_b.2,
            row.v_ab.2,
        );
        assert!(json.contains(&expected), "row {expected} missing from JSON");
    }
}

#[test]
fn csv_renderer_separates_multi_section_documents() {
    let study = session(2011);
    let sections = study.report_sections().unwrap();
    assert!(sections.len() >= 10);
    let csv = CsvRenderer.document(&sections);
    assert!(csv.contains("# Table III: pairwise common vulnerabilities\n"));
    assert!(csv.contains("# Section IV-E: summary\n"));
}
