//! Integration tests checking that every experiment (E1–E11 in DESIGN.md)
//! reproduces the paper's published numbers within the documented
//! calibration slack. EXPERIMENTS.md records the same comparisons in prose.

use datagen::calibration::{self, table1_row, table3_row, table5_cell};
use datagen::CalibratedGenerator;
use nvd_model::{OsDistribution, OsFamily, OsPart};
use osdiv_core::{
    figure3_table, ClassDistribution, Format, KWayAnalysis, PairwiseAnalysis, Period,
    ReleaseAnalysis, ReplicaSelection, ServerProfile, SplitMatrix, Study, TemporalAnalysis,
    ValidityDistribution,
};

/// Shared slack: the three named multi-OS vulnerabilities of Section IV-B
/// cannot be made exactly consistent with every published marginal (see
/// DESIGN.md §5), so a small deviation is accepted on the pairs they touch.
const SLACK: usize = 3;

fn study() -> Study {
    let dataset = CalibratedGenerator::new(2011).generate();
    Study::from_entries(dataset.entries())
}

#[test]
fn e1_table1_validity_distribution_matches_the_paper() {
    let study = study();
    let table1 = study.get::<ValidityDistribution>().unwrap();
    for os in OsDistribution::ALL {
        let expected = table1_row(os);
        let [valid, unknown, unspecified, disputed] = table1.for_os(os);
        assert_eq!(valid, expected.valid as usize, "{os} valid");
        assert_eq!(unknown, expected.unknown as usize, "{os} unknown");
        assert_eq!(
            unspecified, expected.unspecified as usize,
            "{os} unspecified"
        );
        assert_eq!(disputed, expected.disputed as usize, "{os} disputed");
    }
}

#[test]
fn e2_table2_class_shares_match_the_paper_shape() {
    let study = study();
    let table2 = study.get::<ClassDistribution>().unwrap();
    let [driver, kernel, syssoft, app] = table2.class_percentages();
    // Paper: 1.4% / 35.5% / 23.2% / 39.9%.
    assert!(driver < 4.0, "driver {driver:.1}%");
    assert!((kernel - 35.5).abs() < 10.0, "kernel {kernel:.1}%");
    assert!(
        (syssoft - 23.2).abs() < 10.0,
        "system software {syssoft:.1}%"
    );
    assert!((app - 39.9).abs() < 10.0, "application {app:.1}%");
}

#[test]
fn e3_figure2_temporal_shape_matches_the_paper() {
    let study = study();
    let temporal = study.get::<TemporalAnalysis>().unwrap();
    // Recent OSes only receive reports after their first release.
    assert_eq!(temporal.count(OsDistribution::Windows2008, 2005), 0);
    assert_eq!(temporal.count(OsDistribution::OpenSolaris, 2006), 0);
    assert!(temporal.count(OsDistribution::Ubuntu, 2000) == 0);
    // The BSD and Linux families report fewer vulnerabilities in the last
    // five years than before (the paper's second observation on Figure 2).
    for os in [OsDistribution::OpenBsd, OsDistribution::Debian] {
        let early: u64 = (1996..=2005).map(|y| temporal.count(os, y)).sum();
        let late: u64 = (2006..=2010).map(|y| temporal.count(os, y)).sum();
        assert!(late < early, "{os}: early {early}, late {late}");
    }
    // Windows family members have correlated peaks and valleys.
    let corr = temporal
        .correlation(OsDistribution::Windows2000, OsDistribution::Windows2003)
        .unwrap();
    assert!(corr > 0.2, "Windows 2000/2003 correlation {corr}");
}

#[test]
fn e4_table3_pairwise_counts_match_the_paper() {
    let study = study();
    let analysis = study.get::<PairwiseAnalysis>().unwrap();
    let mut exact_pairs = 0;
    for row in analysis.rows() {
        let expected = table3_row(row.a, row.b).unwrap();
        let expected_triple = (
            expected.all as usize,
            expected.no_app as usize,
            expected.no_app_no_local as usize,
        );
        assert!(
            row.v_ab.0 >= expected_triple.0 && row.v_ab.0 <= expected_triple.0 + SLACK,
            "{}-{} all: {} vs {}",
            row.a,
            row.b,
            row.v_ab.0,
            expected_triple.0
        );
        assert!(
            row.v_ab.2 >= expected_triple.2 && row.v_ab.2 <= expected_triple.2 + SLACK,
            "{}-{} isolated: {} vs {}",
            row.a,
            row.b,
            row.v_ab.2,
            expected_triple.2
        );
        if (row.v_ab.0, row.v_ab.1, row.v_ab.2) == expected_triple {
            exact_pairs += 1;
        }
    }
    assert!(
        exact_pairs >= 40,
        "only {exact_pairs} of 55 pairs are exact"
    );
    // Per-OS totals (the v(A) columns) are exact.
    for os in OsDistribution::ALL {
        let (all, no_app, its) = calibration::os_totals(os);
        assert_eq!(
            study.count_for_os(os, ServerProfile::FatServer),
            all as usize,
            "{os} all"
        );
        let measured_no_app = study.count_for_os(os, ServerProfile::ThinServer);
        let measured_its = study.count_for_os(os, ServerProfile::IsolatedThinServer);
        assert!(
            measured_no_app.abs_diff(no_app as usize) <= 12,
            "{os} no-app"
        );
        assert!(measured_its.abs_diff(its as usize) <= 12, "{os} isolated");
    }
}

#[test]
fn e5_table4_part_breakdown_matches_the_paper() {
    let study = study();
    let analysis = study.get::<PairwiseAnalysis>().unwrap();
    for expected in &calibration::TABLE4 {
        let row = analysis
            .part_breakdown()
            .iter()
            .find(|r| {
                (r.a == expected.a && r.b == expected.b) || (r.a == expected.b && r.b == expected.a)
            })
            .unwrap_or_else(|| panic!("missing breakdown row {}-{}", expected.a, expected.b));
        assert!(
            row.kernel.abs_diff(expected.kernel as usize) <= SLACK,
            "{}-{} kernel {} vs {}",
            expected.a,
            expected.b,
            row.kernel,
            expected.kernel
        );
        assert!(
            row.system_software
                .abs_diff(expected.system_software as usize)
                <= SLACK,
            "{}-{} syssoft",
            expected.a,
            expected.b
        );
        assert!(row.driver.abs_diff(expected.driver as usize) <= SLACK);
    }
}

#[test]
fn e6_kway_combinations_match_the_papers_named_findings() {
    let study = study();
    let analysis = study.get::<KWayAnalysis>().unwrap();
    // "There are only two vulnerabilities shared by six OSes … and one
    // vulnerability that appears in nine OSes."
    assert_eq!(analysis.row(9).unwrap().vulnerabilities_at_least_k, 1);
    assert_eq!(analysis.row(6).unwrap().vulnerabilities_at_least_k, 3);
    assert_eq!(
        analysis.row(6).unwrap().vulnerabilities_at_least_k
            - analysis.row(7).unwrap().vulnerabilities_at_least_k,
        2,
        "exactly two vulnerabilities affect exactly six OSes"
    );
}

#[test]
fn e7_table5_history_observed_split_matches_the_paper() {
    let study = study();
    let matrix = study.get::<SplitMatrix>().unwrap();
    for cell in &calibration::TABLE5 {
        let history = matrix.count(cell.a, cell.b, Period::History).unwrap();
        let observed = matrix.count(cell.a, cell.b, Period::Observed).unwrap();
        assert!(
            history.abs_diff(cell.history as usize) <= SLACK,
            "{}-{} history {} vs {}",
            cell.a,
            cell.b,
            history,
            cell.history
        );
        assert!(
            observed.abs_diff(cell.observed as usize) <= SLACK,
            "{}-{} observed {} vs {}",
            cell.a,
            cell.b,
            observed,
            cell.observed
        );
    }
    // Spot check the pair the paper highlights (Windows 2000 / 2003).
    assert!(table5_cell(OsDistribution::Windows2000, OsDistribution::Windows2003).is_some());
}

#[test]
fn e8_figure3_diverse_sets_beat_the_homogeneous_baseline() {
    let study = study();
    let selection = ReplicaSelection::new(&study);
    let outcomes = selection.figure3();
    let rendered = figure3_table(&outcomes).render();
    assert!(rendered.contains("Set1"));
    let baseline = &outcomes[0];
    // The paper's baseline: Debian with 16 history / 9 observed.
    assert!(
        baseline.history.abs_diff(16) <= SLACK,
        "baseline history {}",
        baseline.history
    );
    assert!(
        baseline.observed.abs_diff(9) <= SLACK,
        "baseline observed {}",
        baseline.observed
    );
    // At least three of the four diverse sets beat the baseline in the
    // observed period, and the best does so by a factor of at least two.
    let better = outcomes[1..]
        .iter()
        .filter(|o| o.observed < baseline.observed)
        .count();
    assert!(better >= 3);
    let best = outcomes[1..].iter().map(|o| o.observed).min().unwrap();
    assert!(best * 2 < baseline.observed);
}

#[test]
fn e9_table6_release_level_diversity_matches_the_paper() {
    let study = study();
    let analysis = study.get::<ReleaseAnalysis>().unwrap();
    assert_eq!(analysis.rows().len(), 15);
    assert_eq!(analysis.disjoint_pairs(), 11);
    let non_zero: usize = analysis.rows().iter().filter(|r| r.common > 0).count();
    assert_eq!(non_zero, 4);
    for row in analysis.rows() {
        assert!(
            row.common <= 1,
            "{}-{} has {}",
            row.a.label(),
            row.b.label(),
            row.common
        );
    }
}

#[test]
fn e11_summary_findings_match_section_4e() {
    let study = study();
    let analysis = study.get::<PairwiseAnalysis>().unwrap();
    let summary = analysis.summary();
    // Finding 1: ~56% average reduction.
    assert!(
        (0.40..=0.75).contains(&summary.average_reduction),
        "average reduction {:.2}",
        summary.average_reduction
    );
    // Finding 2: more than half the pairs have at most one common
    // vulnerability.
    assert!(summary.pairs_with_at_most_one_common * 2 > summary.pair_count);
    // Finding 6: drivers account for a very small share of the
    // vulnerabilities.
    let driver_share = study
        .get::<ClassDistribution>()
        .unwrap()
        .class_percentage(OsPart::Driver);
    assert!(driver_share < 4.0, "driver share {driver_share:.1}%");
}

#[test]
fn full_report_renders_every_family_and_table() {
    let study = study();
    let rendered = study.report(Format::Text).unwrap();
    for family in OsFamily::ALL {
        assert!(rendered.contains(&format!("Figure 2 ({family} family)")));
    }
    for table in [
        "Table I",
        "Table II",
        "Table III",
        "Table IV",
        "Table V",
        "Table VI",
    ] {
        assert!(rendered.contains(table), "missing {table}");
    }
}
