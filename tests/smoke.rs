//! Workspace smoke test: asserts the facade crate's re-exports compile and
//! interoperate — one headline type per member crate, exercised end-to-end
//! on a tiny pipeline run (mirroring the imports of `tests/pipeline.rs`).

use osdiv::bft_sim::{ReplicaSet, SimulationConfig, Simulator};
use osdiv::classify::Classifier;
use osdiv::datagen::CalibratedGenerator;
use osdiv::nvd_feed::{FeedReader, FeedWriter};
use osdiv::nvd_model::{OsDistribution, OsSet};
use osdiv::osdiv_core::{PairwiseAnalysis, ServerProfile, Study};
use osdiv::tabular::TextTable;
use osdiv::vulnstore::VulnStore;

#[test]
fn facade_reexports_compose_into_a_pipeline() {
    // datagen → vulnstore/core ingestion, behind the session API.
    let dataset = CalibratedGenerator::new(99).generate();
    let study = Study::from_entries(dataset.entries());
    assert!(
        study.valid_count() > 0,
        "calibrated dataset must not be empty"
    );

    // Standalone store ingestion.
    let mut store = VulnStore::new();
    for entry in dataset.entries().iter().take(10) {
        store.insert_entry(entry);
    }
    assert!(store.vulnerability_count() > 0);

    // Feed round-trip on a small slice.
    let slice: Vec<_> = dataset.entries().iter().take(5).cloned().collect();
    let xml = FeedWriter::new()
        .write_to_string(&slice)
        .expect("write feed");
    let parsed = FeedReader::new().read_from_str(&xml).expect("parse feed");
    assert_eq!(parsed.len(), slice.len());

    // Classification of one summary.
    let classifier = Classifier::with_default_rules();
    let _part = classifier.classify_summary(slice[0].summary());

    // Pairwise analysis headline query, memoized by the session.
    let pairwise = study.get::<PairwiseAnalysis>().expect("default config");
    assert_eq!(pairwise.rows().len(), 55, "11 OSes give C(11,2) = 55 pairs");
    let pair = OsSet::pair(OsDistribution::Debian, OsDistribution::OpenBsd);
    let _common = study.count_common(pair, ServerProfile::FatServer);

    // Simulator on a tiny trial budget.
    let replicas = ReplicaSet::homogeneous(OsDistribution::Debian, 4);
    let config = SimulationConfig::default().with_trials(5).with_seed(1);
    let outcome = Simulator::new(&study, config).run(&replicas);
    let _ = outcome;

    // Tabular rendering.
    let mut table = TextTable::new(["OS", "Valid"]);
    table.push_row(["Debian", "x"]);
    assert!(table.render().contains("Debian"));
}

#[test]
fn facade_root_reexports_are_usable_directly() {
    // The crate root lifts the headline types; spot-check a few.
    let dataset = osdiv::CalibratedGenerator::new(7).generate();
    let study = osdiv::Study::from_entries(dataset.entries());
    let _ = study.get::<osdiv::ClassDistribution>().unwrap();
    let _ = study.get::<osdiv::ValidityDistribution>().unwrap();
    assert_eq!(study.cached_ids().len(), 2);
}
