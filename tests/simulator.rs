//! Integration tests spanning the analysis core and the intrusion-tolerance
//! simulator: the simulator's survival ordering must be consistent with the
//! diversity metrics computed by `osdiv-core`.

use bft_sim::{AttackerModel, QuorumModel, ReplicaSet, SimulationConfig, Simulator};
use datagen::CalibratedGenerator;
use nvd_model::{OsDistribution, OsSet};
use osdiv_core::{figure3_configurations, Period, ReplicaSelection, StudyDataset};

fn study() -> StudyDataset {
    let dataset = CalibratedGenerator::new(31).generate();
    StudyDataset::from_entries(dataset.entries())
}

#[test]
fn survival_ordering_matches_the_diversity_analysis() {
    let study = study();
    let selection = ReplicaSelection::new(&study);
    let simulator = Simulator::new(
        &study,
        SimulationConfig::default().with_trials(150).with_seed(4),
    );

    // Rank the Figure 3 configurations by their observed-period shared
    // vulnerabilities and by simulated failure probability: the most diverse
    // configuration must not be the most fragile one in the simulation.
    let mut analytic: Vec<(String, usize)> = Vec::new();
    let mut simulated: Vec<(String, f64)> = Vec::new();
    for (label, oses) in figure3_configurations() {
        analytic.push((label.to_string(), selection.score(oses, Period::Observed)));
        let report = simulator.run(&ReplicaSet::diverse(oses));
        simulated.push((label.to_string(), report.failure_probability()));
    }
    let best_analytic = analytic
        .iter()
        .min_by_key(|(_, score)| *score)
        .unwrap()
        .0
        .clone();
    let worst_simulated = simulated
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap()
        .0
        .clone();
    assert_ne!(
        best_analytic, worst_simulated,
        "the analytically most diverse set must not be the most fragile in simulation"
    );
}

#[test]
fn homogeneous_systems_fail_more_often_than_the_paper_sets() {
    let study = study();
    let simulator = Simulator::new(
        &study,
        SimulationConfig::default().with_trials(200).with_seed(9),
    );
    let homogeneous = simulator.run(&ReplicaSet::homogeneous(OsDistribution::Windows2000, 4));
    for (label, oses) in figure3_configurations() {
        let diverse = simulator.run(&ReplicaSet::diverse(oses));
        assert!(
            diverse.failure_probability() <= homogeneous.failure_probability(),
            "{label}: diverse {} vs homogeneous {}",
            diverse.failure_probability(),
            homogeneous.failure_probability()
        );
    }
}

#[test]
fn stronger_attackers_and_weaker_quorums_never_help() {
    let study = study();
    let set = ReplicaSet::diverse(OsSet::from_iter([
        OsDistribution::Windows2003,
        OsDistribution::Solaris,
        OsDistribution::Debian,
        OsDistribution::OpenBsd,
    ]));
    let weak = Simulator::new(
        &study,
        SimulationConfig::default()
            .with_trials(120)
            .with_seed(5)
            .with_attacker(AttackerModel {
                exploit_probability: 0.05,
                exposure_days: 5.0,
            }),
    )
    .run(&set);
    let strong = Simulator::new(
        &study,
        SimulationConfig::default()
            .with_trials(120)
            .with_seed(5)
            .with_attacker(AttackerModel {
                exploit_probability: 0.6,
                exposure_days: 60.0,
            }),
    )
    .run(&set);
    assert!(weak.failure_probability() <= strong.failure_probability());

    // For a three-replica deployment, the 2f+1 model tolerates one intrusion
    // while 3f+1 tolerates none, so it can only do better.
    let three = ReplicaSet::diverse(OsSet::from_iter([
        OsDistribution::OpenBsd,
        OsDistribution::Solaris,
        OsDistribution::Windows2003,
    ]));
    let strict = Simulator::new(
        &study,
        SimulationConfig::default().with_trials(120).with_seed(6),
    )
    .run(&three);
    let relaxed = Simulator::new(
        &study,
        SimulationConfig::default()
            .with_trials(120)
            .with_seed(6)
            .with_quorum(QuorumModel::TwoFPlusOne),
    )
    .run(&three);
    assert!(relaxed.failure_probability() <= strict.failure_probability());
}

#[test]
fn selection_recommendation_survives_well_in_simulation() {
    let study = study();
    let selection = ReplicaSelection::new(&study);
    let (best_group, _) = selection.best_groups(4, 1)[0];
    let simulator = Simulator::new(
        &study,
        SimulationConfig::default().with_trials(200).with_seed(12),
    );
    let recommended = simulator.run(&ReplicaSet::diverse(best_group));
    let homogeneous = simulator.run(&ReplicaSet::homogeneous(OsDistribution::Debian, 4));
    assert!(
        recommended.failure_probability() < homogeneous.failure_probability(),
        "recommended {} vs homogeneous {}",
        recommended.failure_probability(),
        homogeneous.failure_probability()
    );
}
