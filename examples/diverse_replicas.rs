//! Selecting diverse replica groups for an intrusion-tolerant system, the
//! way the paper does it (Section IV-C): choose the group on *history* data
//! (1994-2005), then check how it would have fared on the *observed* period
//! (2006-2010).
//!
//! Run with:
//!
//! ```text
//! cargo run -p osdiv-bench --example diverse_replicas
//! ```

use datagen::CalibratedGenerator;
use osdiv_core::{figure3_table, ReplicaSelection, Study};

fn main() {
    let dataset = CalibratedGenerator::new(2011).generate();
    let study = Study::from_entries(dataset.entries());
    let selection = ReplicaSelection::new(&study);

    // The homogeneous baseline: four replicas of the OS with the fewest
    // remotely exploitable base-system vulnerabilities in the history period.
    let (best_single, history_count) = selection.best_single_os();
    println!(
        "Best single OS on history data: {best_single} ({history_count} remotely \
         exploitable base-system vulnerabilities 1994-2005)\n"
    );

    // The paper's Figure 3: the baseline and the four diverse sets.
    println!("{}", figure3_table(&selection.figure3()).render());

    // Exhaustive search: the best four-OS and six-OS groups according to the
    // history period.
    println!("Best four-OS replica groups (history score = distinct shared vulnerabilities):");
    for (group, score) in selection.best_groups(4, 5) {
        println!("  {group:<45} {score}");
    }
    println!();
    println!("Best six-OS replica groups (enough for f=1 with 3f+1 plus two spares,");
    println!("or f=2 with 2f+1 replicas):");
    for (group, score) in selection.best_groups(6, 3) {
        println!("  {group:<70} {score}");
    }
}
