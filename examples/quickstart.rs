//! Quickstart: generate the calibrated vulnerability dataset, load it into
//! the study, and ask the paper's central question for one OS pair and one
//! replica group.
//!
//! Run with:
//!
//! ```text
//! cargo run -p osdiv-bench --example quickstart
//! ```

use datagen::CalibratedGenerator;
use nvd_model::{OsDistribution, OsSet};
use osdiv_core::{PairwiseAnalysis, ServerProfile, Study};

fn main() {
    // 1. Generate the synthetic NVD dataset calibrated to the paper's
    //    published statistics (Tables I-VI), and load it into a study
    //    session (analysis results are computed once and memoized).
    let dataset = CalibratedGenerator::new(2011).generate();
    let study = Study::from_entries(dataset.entries());
    println!(
        "Loaded {} vulnerabilities ({} valid) affecting {} operating systems.\n",
        study.store().vulnerability_count(),
        study.valid_count(),
        OsDistribution::COUNT
    );

    // 2. How many vulnerabilities do two specific OSes share, and how does
    //    the server configuration change that?
    let pair = OsSet::pair(OsDistribution::Debian, OsDistribution::Windows2003);
    println!("Common vulnerabilities of {pair}:");
    for profile in ServerProfile::ALL {
        println!(
            "  {:<22} {}",
            format!("{profile}:"),
            study.count_common(pair, profile)
        );
    }
    println!();

    // 3. The headline numbers of the paper: average reduction when moving to
    //    an Isolated Thin Server and the share of pairs with at most one
    //    common vulnerability.
    let summary = study.get::<PairwiseAnalysis>().unwrap().summary();
    println!(
        "Across all {} OS pairs: filtering applications and local-only \
         vulnerabilities removes {:.0}% of the common vulnerabilities on \
         average, and {} pairs share at most one remotely exploitable \
         base-system vulnerability.",
        summary.pair_count,
        summary.average_reduction * 100.0,
        summary.pairs_with_at_most_one_common
    );

    // 4. A four-replica intrusion-tolerant deployment (f = 1, n = 3f + 1).
    let replicas = OsSet::from_iter([
        OsDistribution::Windows2003,
        OsDistribution::Solaris,
        OsDistribution::Debian,
        OsDistribution::OpenBsd,
    ]);
    println!(
        "\nThe diverse replica group {replicas} shares {} remotely exploitable \
         base-system vulnerabilities across all four members (1994-2010).",
        study.count_common(replicas, ServerProfile::IsolatedThinServer)
    );
}
