//! Monte-Carlo intrusion-tolerance simulation: how often does a BFT system
//! lose more than `f` replicas at once, depending on the OS diversity of its
//! replica group?
//!
//! This is the extension experiment (E10 in DESIGN.md): it turns the paper's
//! common-vulnerability counts into survival probabilities under an explicit
//! attacker model.
//!
//! Run with:
//!
//! ```text
//! cargo run -p osdiv-bench --example intrusion_tolerance_sim
//! ```

use bft_sim::{AttackerModel, ReplicaSet, SimulationConfig, Simulator};
use datagen::CalibratedGenerator;
use nvd_model::OsDistribution;
use osdiv_core::{figure3_configurations, StudyDataset};

fn main() {
    let dataset = CalibratedGenerator::new(2011).generate();
    let study = StudyDataset::from_entries(dataset.entries());

    let config = SimulationConfig::default()
        .with_trials(300)
        .with_seed(7)
        .with_attacker(AttackerModel {
            exploit_probability: 0.10,
            exposure_days: 10.0,
        });
    let simulator = Simulator::new(&study, config);

    let mut configurations = vec![ReplicaSet::homogeneous(OsDistribution::Debian, 4)];
    for (_, oses) in figure3_configurations() {
        configurations.push(ReplicaSet::diverse(oses));
    }

    println!("Simulated period: 2006-2010, f = 1, n = 4 replicas (3f+1)\n");
    println!(
        "{:<45} {:>12} {:>16} {:>10}",
        "configuration", "P(failure)", "MTTF (days)", "peak"
    );
    for set in &configurations {
        let report = simulator.run(set);
        println!(
            "{:<45} {:>12.2} {:>16} {:>10.2}",
            report.label(),
            report.failure_probability(),
            report
                .mean_time_to_failure_days()
                .map(|d| format!("{d:.0}"))
                .unwrap_or_else(|| "-".to_string()),
            report.mean_peak_compromised()
        );
    }

    // Proactive recovery sensitivity for the best diverse configuration.
    println!("\nProactive recovery sweep for the first diverse configuration:");
    let diverse = &configurations[1];
    for period in [7.0, 30.0, 90.0] {
        let config = SimulationConfig::default()
            .with_trials(300)
            .with_seed(7)
            .with_recovery_period(period);
        let report = Simulator::new(&study, config).run(diverse);
        println!(
            "  recovery every {period:>3.0} days -> P(failure) = {:.2}",
            report.failure_probability()
        );
    }
}
