//! The full data pipeline the paper describes in Section III: write NVD XML
//! feeds to disk, parse them back, normalize product names, load everything
//! into the relational store, classify every entry into an OS part, and
//! report how well the automated classification matches the ground truth.
//!
//! Run with:
//!
//! ```text
//! cargo run -p osdiv-bench --example feed_pipeline
//! ```

use classify::{ClassificationReport, Classifier};
use datagen::CalibratedGenerator;
use nvd_feed::{FeedReader, FeedWriter};
use osdiv_core::{ClassDistribution, Study};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Materialize the synthetic dataset as yearly NVD 2.0-style feeds,
    //    exactly like the files the paper's pipeline downloaded.
    let dataset = CalibratedGenerator::new(2011).generate();
    let feed_dir = std::env::temp_dir().join("osdiv-feeds");
    std::fs::create_dir_all(&feed_dir)?;
    let mut feed_paths = Vec::new();
    for year in 2002..=2010u16 {
        // The 2002 feed carries everything reported up to 2002, matching the
        // paper's description of the historical feed.
        let entries: Vec<_> = dataset
            .entries()
            .iter()
            .filter(|e| {
                if year == 2002 {
                    e.year() <= 2002
                } else {
                    e.year() == year
                }
            })
            .cloned()
            .collect();
        let path = feed_dir.join(format!("nvdcve-2.0-{year}.xml"));
        FeedWriter::new()
            .with_pub_date(format!("{year}-12-31"))
            .write_to_path(&path, &entries)?;
        feed_paths.push((path, entries.len()));
    }
    println!(
        "Wrote {} yearly feeds to {}",
        feed_paths.len(),
        feed_dir.display()
    );

    // 2. Parse the feeds back and merge duplicates (entries republished in
    //    several yearly feeds), as the SQL ingestion of the paper did.
    let mut reader = FeedReader::new();
    let mut parsed = Vec::new();
    for (path, _) in &feed_paths {
        parsed.extend(reader.read_from_path(path)?);
    }
    let merged = nvd_feed::merge_duplicate_entries(parsed);
    println!(
        "Parsed {} entries back from the feeds ({} skipped as malformed)",
        merged.len(),
        reader.skipped()
    );

    // 3. Load the entries into the study and classify the ones without an
    //    OS-part class using the rule engine.
    let mut study = Study::from_entries(&merged);
    let classifier = Classifier::with_default_rules();
    let classified = study.dataset_mut().classify_unlabelled(&classifier);
    println!("Rule-classified {classified} entries without a class");

    // 4. Evaluate the classifier against the generator's ground truth.
    let pairs: Vec<_> = dataset
        .entries()
        .iter()
        .filter_map(|entry| {
            let truth = entry.part()?;
            let predicted = classifier.classify_entry(entry).part;
            Some((truth, predicted))
        })
        .collect();
    let report = ClassificationReport::from_pairs(pairs);
    println!("\nClassifier evaluation against the generator's ground truth:");
    println!("{report}");

    // 5. The resulting Table II-style distribution.
    let distribution = study.get::<ClassDistribution>().unwrap();
    println!("Per-class share of the classified dataset:");
    let [driver, kernel, syssoft, app] = distribution.class_percentages();
    println!(
        "  Driver {driver:.1}%  Kernel {kernel:.1}%  Sys. Soft. {syssoft:.1}%  App. {app:.1}%"
    );

    // Clean up the temporary feeds.
    for (path, _) in feed_paths {
        std::fs::remove_file(path).ok();
    }
    Ok(())
}
